"""Named calibration workloads shared by ``calibrate`` and ``sweep``.

Profiles are keyed by the request's clockless sha256 digest, so the
calibration step and any later sweep must build *byte-identical*
requests (same programs, same window, same topology) for the profile
to be found. This registry is that shared construction path: a small
menu of representative workloads — one provably frequency-independent
integer loop, the shared-data histogram, and the Table VII memory
scenarios whose distinct timing classes are exactly the points
batching cannot coalesce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.system import PitonSystem, SimRequest
from repro.workloads.base import TileProgram
from repro.workloads.memtests import build_memtest
from repro.workloads.microbench import (
    hist_workload,
    int_tile,
    microbench_core_ids,
)

#: build(quick) -> (workload, warmup_cycles, window_cycles)
_Builder = Callable[[bool], tuple[Mapping[int, TileProgram], int, int]]


@dataclass(frozen=True)
class NamedWorkload:
    """One calibratable workload: a deterministic request builder."""

    name: str
    description: str
    build: _Builder

    def base_request(
        self, quick: bool = False, freq_hz: float | None = None
    ) -> SimRequest:
        """The canonical request this workload calibrates/sweeps as."""
        workload, warmup, window = self.build(quick)
        system = PitonSystem.default()
        if freq_hz is not None:
            system.set_operating_point(1.0, 1.05, freq_hz)
        return system.sim_request(
            dict(workload),
            warmup_cycles=warmup,
            window_cycles=window,
        )


def _int(quick: bool):
    cores = 2 if quick else 4
    tiles = {tile: int_tile() for tile in microbench_core_ids(cores)}
    return tiles, (1000 if quick else 2000), (3000 if quick else 6000)


def _hist(quick: bool):
    cores = 2 if quick else 4
    tiles = hist_workload(microbench_core_ids(cores), 1).tiles
    return tiles, (1000 if quick else 2000), (2500 if quick else 5000)


def _mem(scenario: str, quick: bool):
    # Memory latencies run hundreds of core cycles, so the window must
    # cover many loop trips for per-window counts to be statistically
    # smooth; too short a window turns integer granularity into fake
    # interpolation error in the fitted bars.
    tiles = {0: build_memtest(scenario, 0).tile_program}
    return tiles, (1500 if quick else 3000), (12000 if quick else 36000)


CALIBRATION_WORKLOADS: dict[str, NamedWorkload] = {
    nw.name: nw
    for nw in (
        NamedWorkload(
            "int",
            "pure integer loop (frequency-independent, exact surrogate)",
            _int,
        ),
        NamedWorkload(
            "hist",
            "shared-data histogram (memory-touching, Fig 13's Hist)",
            _hist,
        ),
        NamedWorkload(
            "mem_l2",
            "Table VII local L2 hit loop (frequency-dependent)",
            lambda quick: _mem("l2_hit_local", quick),
        ),
        NamedWorkload(
            "mem_dram",
            "Table VII L2 miss loop (off-chip latency dominated)",
            lambda quick: _mem("l2_miss_local", quick),
        ),
    )
}
