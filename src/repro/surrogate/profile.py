"""Per-workload event-rate profiles: the surrogate's calibrated state.

A :class:`WorkloadProfile` is what ``repro calibrate`` persists for one
workload-affinity class (see :func:`repro.batch.key.affinity_key`): the
raw event ledgers of a handful of cycle-level **anchor** simulations at
different clocks, plus the validation-fitted per-metric error bars of
interpolating between them.

The design splits prediction responsibilities the same way the
simulator/bench split does:

* everything *architectural* (event counts, activity weights, cycles,
  instructions) is interpolated from the anchors — this is the only
  approximation, and only the clock axis is approximated at all;
* everything *electrical* (V, persona, temperature, leakage, CV^2f,
  per-event pricing) is evaluated exactly by the existing
  :mod:`repro.power` equations at the requested operating point.

For workloads whose batch key is frequency-independent (no ``Unit.MEM``
instruction and no memory image) the architectural outcome provably
does not depend on the clock, so a single anchor reproduces the
simulator bit-for-bit and the profile's error bound is exactly zero.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

PROFILE_SCHEMA_VERSION = 1

#: Metrics tracked by calibration validation. Each gets its own error
#: bar in the persisted profile and the ``repro calibrate`` report.
PROFILE_METRICS = (
    "cycles",
    "instructions",
    "event_core_w",
    "vdd_w",
    "vcs_w",
    "core_w",
    "total_w",
    "epi_pj",
)

#: The subset the ``--tier auto`` dispatcher gates on: the figures a
#: sweep actually reports (per-rail power and EPI). Raw ``cycles`` /
#: ``instructions`` bars stay visible in the report but do not gate —
#: on short windows they are dominated by integer granularity (±1
#: instruction on a 6-instruction window is a 17% "error") that the
#: power figures, which divide by window time, do not inherit.
GATE_METRICS = (
    "event_core_w",
    "vdd_w",
    "vcs_w",
    "core_w",
    "total_w",
    "epi_pj",
)


@dataclass(frozen=True)
class AnchorRun:
    """One cycle-level anchor simulation, stored raw.

    Counts and weights are the anchor ledger's exact floats — stored
    untransformed so a prediction *at* an anchor frequency reproduces
    the simulator's ledger bit-for-bit.
    """

    freq_hz: float
    cycles: int
    instructions: int
    completed: bool
    counts: Mapping[str, float] = field(hash=False, default_factory=dict)
    weights: Mapping[str, float] = field(hash=False, default_factory=dict)
    #: Wall-clock cost of producing this anchor (build + simulate),
    #: recorded so reports can show what calibration bought.
    sim_wall_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "freq_hz": self.freq_hz,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "completed": self.completed,
            "counts": dict(self.counts),
            "weights": dict(self.weights),
            "sim_wall_s": self.sim_wall_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AnchorRun":
        return cls(
            freq_hz=float(data["freq_hz"]),  # type: ignore[arg-type]
            cycles=int(data["cycles"]),  # type: ignore[arg-type]
            instructions=int(data["instructions"]),  # type: ignore[arg-type]
            completed=bool(data["completed"]),
            counts=dict(data["counts"]),  # type: ignore[arg-type]
            weights=dict(data["weights"]),  # type: ignore[arg-type]
            sim_wall_s=float(data.get("sim_wall_s", 0.0)),  # type: ignore[arg-type]
        )


@dataclass
class WorkloadProfile:
    """Calibrated surrogate state for one workload-affinity class."""

    #: Hex sha256 of the request's clockless pickle — the same digest
    #: family the checkpoint journal and batch planner key on. Covers
    #: workload, config, interleave, window, drafting, and checks, so a
    #: profile can never be applied to a request it was not fitted for.
    key: str
    #: Human-readable name of the workload that was calibrated (for
    #: reports only; the ``key`` is the identity).
    workload: str
    #: True when the batch key proves the clock cannot affect the
    #: architectural outcome; prediction is then exact at any clock.
    freq_independent: bool
    anchors: list[AnchorRun]
    #: Per-metric relative error bound fitted from held-out validation
    #: points (empty means "no interpolation happens": exact).
    error_bounds: dict[str, float] = field(default_factory=dict)
    #: Raw per-validation-point relative errors, for the report artifact.
    validation: list[dict[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.anchors:
            raise ValueError("a profile needs at least one anchor run")
        self.anchors = sorted(self.anchors, key=lambda a: a.freq_hz)
        freqs = [a.freq_hz for a in self.anchors]
        if len(set(freqs)) != len(freqs):
            raise ValueError("anchor frequencies must be distinct")

    # ------------------------------------------------------------- properties
    @property
    def freq_min_hz(self) -> float:
        return self.anchors[0].freq_hz

    @property
    def freq_max_hz(self) -> float:
        return self.anchors[-1].freq_hz

    @property
    def error_bound(self) -> float:
        """The dispatcher's gate: worst gated-metric bound (0.0 = exact)."""
        return max(
            (
                bound
                for metric, bound in self.error_bounds.items()
                if metric in GATE_METRICS
            ),
            default=0.0,
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "key": self.key,
            "workload": self.workload,
            "freq_independent": self.freq_independent,
            "anchors": [a.to_dict() for a in self.anchors],
            "error_bounds": dict(self.error_bounds),
            "validation": [dict(v) for v in self.validation],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadProfile":
        version = data.get("schema_version")
        if version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported profile schema_version {version!r} "
                f"(supported: {PROFILE_SCHEMA_VERSION}); re-run "
                f"`repro calibrate` to refresh this profile"
            )
        return cls(
            key=str(data["key"]),
            workload=str(data.get("workload", "?")),
            freq_independent=bool(data["freq_independent"]),
            anchors=[
                AnchorRun.from_dict(a)
                for a in data["anchors"]  # type: ignore[union-attr]
            ],
            error_bounds={
                str(k): float(v)
                for k, v in dict(data.get("error_bounds", {})).items()  # type: ignore[arg-type]
            },
            validation=[
                {str(k): float(v) for k, v in dict(row).items()}
                for row in data.get("validation", [])  # type: ignore[union-attr]
            ],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadProfile":
        return cls.from_dict(json.loads(text))
