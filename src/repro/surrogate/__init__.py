"""Two-tier fidelity: a calibrated analytical fast path for sweeps.

The cycle-level simulator is exact but pays seconds per grid point;
dense operating-point grids (Figure 9/11/13-style sweeps, the ROADMAP's
thousand-point explorers) spend almost all of that re-discovering the
same per-workload event rates at clock after clock. This package
replaces that rediscovery with a lumos-style closed-form model:

* :mod:`~repro.surrogate.profile` — per-workload anchor ledgers plus
  validation-fitted error bars, the persisted calibration state;
* :mod:`~repro.surrogate.store` — sha256-keyed atomic JSON store;
* :mod:`~repro.surrogate.model` — interpolates anchors into synthetic
  :class:`~repro.system.SimOutcome`\\ s priced by the exact
  :mod:`repro.power` equations at the requested (V, f, persona) point;
* :mod:`~repro.surrogate.calibrate` — the ``repro calibrate`` step;
* :mod:`~repro.surrogate.dispatch` — the per-point policy behind
  ``--tier {auto,sim,fast}``, including tier-aware checkpoint reuse.

Cycle-level fidelity stays the default everywhere: without an explicit
``--tier auto``/``fast`` opt-in no surrogate code runs, and paper
figures remain bit-identical to their goldens.
"""

from repro.surrogate.calibrate import (
    CalibrationReport,
    calibrate_named,
    calibrate_request,
    default_anchor_freqs,
    outcome_metrics,
)
from repro.surrogate.dispatch import (
    TIERS,
    FidelityPolicy,
    accepts_cached_outcome,
)
from repro.surrogate.model import SurrogateModel, profile_key
from repro.surrogate.profile import (
    GATE_METRICS,
    PROFILE_METRICS,
    PROFILE_SCHEMA_VERSION,
    AnchorRun,
    WorkloadProfile,
)
from repro.surrogate.store import DEFAULT_PROFILE_DIR, ProfileStore
from repro.surrogate.workloads import CALIBRATION_WORKLOADS, NamedWorkload

__all__ = [
    "AnchorRun",
    "CALIBRATION_WORKLOADS",
    "CalibrationReport",
    "DEFAULT_PROFILE_DIR",
    "FidelityPolicy",
    "GATE_METRICS",
    "NamedWorkload",
    "PROFILE_METRICS",
    "PROFILE_SCHEMA_VERSION",
    "ProfileStore",
    "SurrogateModel",
    "TIERS",
    "WorkloadProfile",
    "accepts_cached_outcome",
    "calibrate_named",
    "calibrate_request",
    "default_anchor_freqs",
    "outcome_metrics",
    "profile_key",
]
