"""Two-tier dispatch policy: surrogate when safe, simulator otherwise.

A :class:`FidelityPolicy` is what the grid executors
(:func:`repro.experiments.parallel.parallel_simulate` and
:func:`repro.batch.execute.batched_simulate`) consult per point:

* ``predict(request)`` returns a ``tier="fast"`` outcome when a
  calibrated profile covers the request and its error bound fits the
  tolerance — otherwise ``None``, and the point falls back to the
  cycle-level simulator. Novel workloads (no profile), out-of-envelope
  clocks, and requests running invariant checks always fall back.
* ``accepts_cached(outcome)`` arbitrates checkpoint-journal reuse
  across tiers: cycle-level points are reusable under any tier, but a
  surrogate point is only reusable when the active policy would have
  served it — a ``--tier sim`` resume of an ``auto`` journal
  re-simulates every fast point rather than silently keeping it.

Accounting lands on the run tracer: ``surrogate_hits`` /
``surrogate_fallbacks`` / ``points_tier_rejected`` counters (→
``RunManifest.resilience``) and the ``surrogate_max_err`` gauge (→
``RunManifest.extra``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.trace import NULL_TRACER, Tracer
from repro.surrogate.model import SurrogateModel, profile_key
from repro.surrogate.store import ProfileStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import SimOutcome, SimRequest

#: The ``--tier`` vocabulary. ``sim`` never constructs a policy — it
#: is the absence of one (``fidelity=None``), keeping every legacy
#: call site on the bit-exact path by default.
TIERS = ("sim", "auto", "fast")


@dataclass
class FidelityPolicy:
    """Per-run dispatch state for ``--tier auto`` / ``--tier fast``."""

    store: ProfileStore
    tier: str = "auto"
    #: Worst acceptable relative error bound for a surrogate-served
    #: point under ``auto`` (the CLI's ``--fidelity``).
    tolerance: float = 0.05
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    _models: dict[str, SurrogateModel | None] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.tier not in ("auto", "fast"):
            raise ValueError(
                f"FidelityPolicy tier must be 'auto' or 'fast', "
                f"got {self.tier!r} (tier 'sim' means no policy)"
            )
        if self.tolerance <= 0:
            raise ValueError("fidelity tolerance must be positive")

    # -------------------------------------------------------------- dispatch
    def model_for(self, request: "SimRequest") -> SurrogateModel | None:
        key = profile_key(request)
        if key not in self._models:
            profile = self.store.get(key)
            self._models[key] = (
                None if profile is None else SurrogateModel(profile)
            )
        return self._models[key]

    def predict(self, request: "SimRequest") -> "SimOutcome | None":
        """The fast-path outcome, or ``None`` to run the simulator."""
        if request.checks:
            # Invariant sweeps only exist inside a real simulation.
            self.tracer.count("surrogate_fallbacks")
            return None
        model = self.model_for(request)
        if model is None or not model.in_envelope(request):
            self.tracer.count("surrogate_fallbacks")
            return None
        if self.tier == "auto" and model.error_bound > self.tolerance:
            self.tracer.count("surrogate_fallbacks")
            return None
        outcome = model.predict(request)
        self.tracer.count("surrogate_hits")
        self.tracer.gauge_max("surrogate_max_err", outcome.tier_err)
        return outcome

    # ---------------------------------------------------------------- resume
    def accepts_cached(self, outcome: "SimOutcome") -> bool:
        """Whether a journaled outcome satisfies this policy's tier."""
        if getattr(outcome, "tier", "sim") != "fast":
            return True  # cycle-level points satisfy every tier
        if self.tier == "fast":
            return True
        return getattr(outcome, "tier_err", 0.0) <= self.tolerance


def accepts_cached_outcome(
    outcome: "SimOutcome", fidelity: FidelityPolicy | None
) -> bool:
    """Tier-aware journal acceptance for the grid executors.

    With no policy (``--tier sim``), only cycle-level points are
    reusable: resuming an ``auto`` journal at full fidelity
    re-simulates every surrogate-served point instead of silently
    keeping it.
    """
    if getattr(outcome, "tier", "sim") != "fast":
        return True
    return fidelity is not None and fidelity.accepts_cached(outcome)
