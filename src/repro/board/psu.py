"""Power supplies: bench units with remote sense, and on-board units.

The paper used bench supplies for every study because (a) they offer
finer setpoints over a wider range and (b) remote voltage sense
compensates the IR drop across cables and board planes — only the
on-board VDD regulator has remote sense. Reproducing the distinction
matters for the voltage actually seen at the socket pins.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BenchSupply:
    """A bench PSU with remote sense at the socket.

    With remote sense the voltage at the sense point equals the
    setpoint regardless of cable/plane drop (within compliance); the
    only residual error is the supply's setpoint resolution.
    """

    name: str
    setpoint_v: float
    setpoint_resolution_v: float = 0.001
    max_current_a: float = 10.0
    remote_sense: bool = True
    cable_resistance_ohm: float = 0.02

    def voltage_at_load(self, current_a: float) -> float:
        """Voltage delivered at the sense point under ``current_a``."""
        if current_a < 0:
            raise ValueError("current must be non-negative")
        if current_a > self.max_current_a:
            raise OverflowError(
                f"{self.name}: {current_a:.2f}A exceeds supply limit"
            )
        setpoint = (
            round(self.setpoint_v / self.setpoint_resolution_v)
            * self.setpoint_resolution_v
        )
        if self.remote_sense:
            return setpoint
        return setpoint - current_a * self.cable_resistance_ohm

    def set_voltage(self, volts: float) -> None:
        if volts <= 0:
            raise ValueError("setpoint must be positive")
        self.setpoint_v = volts


@dataclass
class OnBoardSupply:
    """On-board regulator: coarser setpoints, no remote sense except
    the VDD unit (per the board design)."""

    name: str
    setpoint_v: float
    setpoint_resolution_v: float = 0.0125
    plane_resistance_ohm: float = 0.008
    remote_sense: bool = False

    def voltage_at_load(self, current_a: float) -> float:
        if current_a < 0:
            raise ValueError("current must be non-negative")
        setpoint = (
            round(self.setpoint_v / self.setpoint_resolution_v)
            * self.setpoint_resolution_v
        )
        if self.remote_sense:
            return setpoint
        return setpoint - current_a * self.plane_resistance_ohm
