"""The 128-sample measurement protocol.

"Unless otherwise specified, all experiments in this work record 128
voltage and current samples (about a 7.5 second time window) after the
system reaches a steady state. We report the average power calculated
from the 128 samples [with] error ... the standard deviation of the
samples from the average."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.board import MONITOR_POLL_HZ
from repro.board.sense import CurrentSenseChannel, SenseResistor, VoltageMonitor
from repro.power.chip_power import RailPower
from repro.util.stats import Measurement

#: true_power(t_seconds) -> RailPower: what the chip is really drawing.
PowerSource = Callable[[float], RailPower]


@dataclass(frozen=True)
class RailMeasurement:
    """Per-rail measured power, each with its sample-std error."""

    vdd: Measurement
    vcs: Measurement
    vio: Measurement

    @property
    def total(self) -> Measurement:
        return self.vdd + self.vcs + self.vio

    @property
    def core(self) -> Measurement:
        """VDD + VCS, the sum the EPI/EPF methodology uses."""
        return self.vdd + self.vcs


class MeasurementProtocol:
    """Polls the virtual monitors and reduces samples to mean +/- std."""

    def __init__(
        self,
        rng: np.random.Generator,
        poll_hz: float = MONITOR_POLL_HZ,
        samples: int = 128,
    ):
        if poll_hz <= 0 or samples <= 0:
            raise ValueError("poll rate and sample count must be positive")
        self.poll_hz = poll_hz
        self.samples = samples
        self._rails = {
            "vdd": (
                VoltageMonitor(rng),
                CurrentSenseChannel(SenseResistor(), rng),
            ),
            "vcs": (
                VoltageMonitor(rng),
                CurrentSenseChannel(SenseResistor(), rng),
            ),
            "vio": (
                VoltageMonitor(rng),
                CurrentSenseChannel(SenseResistor(0.010), rng),
            ),
        }

    def measure(
        self,
        power_source: PowerSource,
        voltages: dict[str, float],
        start_time_s: float = 0.0,
    ) -> RailMeasurement:
        """Record the standard 128 samples and reduce them.

        ``power_source`` is sampled at the monitor poll instants, so
        real power fluctuations (phases, refresh) land in the error bar
        exactly as they would on the bench.
        """
        per_rail: dict[str, list[float]] = {"vdd": [], "vcs": [], "vio": []}
        for k in range(self.samples):
            t = start_time_s + k / self.poll_hz
            true = power_source(t)
            true_by_rail = {
                "vdd": true.vdd_w,
                "vcs": true.vcs_w,
                "vio": true.vio_w,
            }
            for rail, (vmon, imon) in self._rails.items():
                volts = voltages[rail]
                true_current = true_by_rail[rail] / volts
                v_meas = vmon.read(volts)
                i_meas = imon.read_current_a(true_current, volts)
                per_rail[rail].append(v_meas * i_meas)
        return RailMeasurement(
            vdd=Measurement.from_samples(per_rail["vdd"]),
            vcs=Measurement.from_samples(per_rail["vcs"]),
            vio=Measurement.from_samples(per_rail["vio"]),
        )

    def measure_steady(
        self, power: RailPower, voltages: dict[str, float]
    ) -> RailMeasurement:
        """Measure a time-invariant power draw."""
        return self.measure(lambda _t: power, voltages)
