"""Long-duration power logging (the paper's openpiton.org data logs).

The paper records full per-rail power logs over entire application runs
(Figure 16 shows one) and publishes them. :class:`PowerLogger` is the
virtual bench's equivalent: it samples a time-varying power source at
the monitor poll rate, keeps the per-rail series, computes the summary
statistics the paper reports, and round-trips through CSV so logs can
be archived and re-analyzed offline.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.board import MONITOR_POLL_HZ
from repro.power.chip_power import RailPower

#: power(t_seconds) -> RailPower
PowerSource = Callable[[float], RailPower]

CSV_HEADER = ("time_s", "vdd_w", "vcs_w", "vio_w")

#: Version of the ``to_dict``/``to_json`` power-log document.
POWERLOG_SCHEMA_VERSION = 1


@dataclass
class PowerLog:
    """A recorded per-rail power time series."""

    times_s: list[float] = field(default_factory=list)
    vdd_w: list[float] = field(default_factory=list)
    vcs_w: list[float] = field(default_factory=list)
    vio_w: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times_s)

    def append(self, t: float, power: RailPower) -> None:
        self.times_s.append(t)
        self.vdd_w.append(power.vdd_w)
        self.vcs_w.append(power.vcs_w)
        self.vio_w.append(power.vio_w)

    # ------------------------------------------------------------- analysis
    def rail(self, name: str) -> list[float]:
        try:
            return {"vdd": self.vdd_w, "vcs": self.vcs_w,
                    "vio": self.vio_w}[name]
        except KeyError:
            raise KeyError(
                f"unknown rail {name!r}; expected vdd/vcs/vio"
            ) from None

    def summary(self, rail: str) -> dict[str, float]:
        series = self.rail(rail)
        if not series:
            raise ValueError("log is empty")
        mean = sum(series) / len(series)
        return {
            "mean_w": mean,
            "min_w": min(series),
            "max_w": max(series),
            "peak_to_peak_w": max(series) - min(series),
        }

    def total_energy_j(self) -> float:
        """Trapezoidal energy over the log (all rails)."""
        if len(self) < 2:
            return 0.0
        energy = 0.0
        for i in range(1, len(self)):
            dt = self.times_s[i] - self.times_s[i - 1]
            p0 = self.vdd_w[i - 1] + self.vcs_w[i - 1] + self.vio_w[i - 1]
            p1 = self.vdd_w[i] + self.vcs_w[i] + self.vio_w[i]
            energy += 0.5 * (p0 + p1) * dt
        return energy

    # ----------------------------------------------------------------- json
    def to_dict(self) -> dict[str, object]:
        """Machine-readable time-series document (all rails + summary
        statistics), the JSON sibling of the published CSV logs."""
        return {
            "schema_version": POWERLOG_SCHEMA_VERSION,
            "samples": len(self),
            "time_s": list(self.times_s),
            "vdd_w": list(self.vdd_w),
            "vcs_w": list(self.vcs_w),
            "vio_w": list(self.vio_w),
            "summary": {
                rail: self.summary(rail)
                for rail in ("vdd", "vcs", "vio")
                if len(self)
            },
            "total_energy_j": self.total_energy_j(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PowerLog":
        version = data.get("schema_version")
        if version != POWERLOG_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported power-log schema_version {version!r} "
                f"(supported: {POWERLOG_SCHEMA_VERSION})"
            )
        log = cls()
        for t, vdd, vcs, vio in zip(
            data["time_s"], data["vdd_w"], data["vcs_w"], data["vio_w"]
        ):
            log.append(t, RailPower(vdd, vcs, vio))
        return log

    @classmethod
    def from_json(cls, text: str) -> "PowerLog":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ csv
    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(CSV_HEADER)
        for i in range(len(self)):
            writer.writerow(
                (
                    f"{self.times_s[i]:.6f}",
                    f"{self.vdd_w[i]:.6f}",
                    f"{self.vcs_w[i]:.6f}",
                    f"{self.vio_w[i]:.6f}",
                )
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "PowerLog":
        reader = csv.reader(io.StringIO(text))
        header = tuple(next(reader))
        if header != CSV_HEADER:
            raise ValueError(f"unexpected CSV header {header}")
        log = cls()
        for row in reader:
            if not row:
                continue
            t, vdd, vcs, vio = (float(x) for x in row)
            log.append(t, RailPower(vdd, vcs, vio))
        return log


class PowerLogger:
    """Samples a power source at the monitor poll rate."""

    def __init__(self, poll_hz: float = MONITOR_POLL_HZ):
        if poll_hz <= 0:
            raise ValueError("poll rate must be positive")
        self.poll_hz = poll_hz

    def record(
        self, source: PowerSource, duration_s: float
    ) -> PowerLog:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        log = PowerLog()
        samples = int(duration_s * self.poll_hz)
        for k in range(samples):
            t = k / self.poll_hz
            log.append(t, source(t))
        return log
