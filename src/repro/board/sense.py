"""Sense resistors and I2C voltage monitors.

Current into each Piton rail is measured as the voltage drop across a
sense resistor bridging split power planes; voltages are read by I2C
monitor devices at the socket pins and on either side of each sense
resistor. The monitors quantize (ADC LSB) and add electrical noise —
which is where the paper's error bars come from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SenseResistor:
    """A precision shunt in series with one rail."""

    ohms: float = 0.005
    tolerance: float = 0.001  # 0.1% parts

    def __post_init__(self) -> None:
        if self.ohms <= 0:
            raise ValueError("sense resistance must be positive")

    def drop_v(self, current_a: float) -> float:
        return current_a * self.ohms


class VoltageMonitor:
    """One I2C monitor channel: quantized, noisy voltage readings."""

    def __init__(
        self,
        rng: np.random.Generator,
        lsb_v: float = 0.25e-3,
        noise_sigma_v: float = 0.12e-3,
    ):
        self.rng = rng
        self.lsb_v = lsb_v
        self.noise_sigma_v = noise_sigma_v

    def read(self, true_volts: float) -> float:
        noisy = true_volts + self.rng.normal(0.0, self.noise_sigma_v)
        return round(noisy / self.lsb_v) * self.lsb_v


class CurrentSenseChannel:
    """Differential monitor across a sense resistor -> amperes."""

    def __init__(
        self,
        resistor: SenseResistor,
        rng: np.random.Generator,
        lsb_v: float = 10e-6,
        noise_sigma_v: float = 5e-6,
    ):
        self.resistor = resistor
        self.high = VoltageMonitor(rng, lsb_v, noise_sigma_v)
        self.low = VoltageMonitor(rng, lsb_v, noise_sigma_v)

    def read_current_a(self, true_current_a: float, rail_v: float) -> float:
        drop = self.resistor.drop_v(true_current_a)
        measured_drop = self.high.read(rail_v + drop) - self.low.read(rail_v)
        return measured_drop / self.resistor.ohms
