"""The assembled experimental system (paper Figure 3).

:class:`PitonTestBoard` wires supplies, sense resistors, and monitors;
:class:`ExperimentalSystem` adds the chip (a persona + power model),
the cooling stack, and the measurement protocol, exposing the
operations every experiment performs: set the operating point, run a
workload's event ledger through the power model, let the die settle
thermally, and take the standard 128-sample measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import DEFAULT_MEASUREMENT, MeasurementDefaults
from repro.board.monitor import MeasurementProtocol, RailMeasurement
from repro.board.psu import BenchSupply
from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.power.chip_power import ChipPowerModel, OperatingPoint, RailPower
from repro.silicon.variation import CHIP2, ChipPersona
from repro.thermal.cooling import STOCK_HEATSINK_FAN, CoolingSetup
from repro.util.events import EventLedger
from repro.util.rng import RngFactory


@dataclass
class PitonTestBoard:
    """Rails and instruments of the custom PCB."""

    rngs: RngFactory = field(default_factory=lambda: RngFactory(0))
    vdd_supply: BenchSupply = field(
        default_factory=lambda: BenchSupply("VDD bench", 1.00)
    )
    vcs_supply: BenchSupply = field(
        default_factory=lambda: BenchSupply("VCS bench", 1.05)
    )
    vio_supply: BenchSupply = field(
        default_factory=lambda: BenchSupply("VIO bench", 1.80)
    )

    def protocol(self) -> MeasurementProtocol:
        return MeasurementProtocol(self.rngs.stream("monitor"))

    def set_rails(self, vdd: float, vcs: float, vio: float = 1.80) -> None:
        self.vdd_supply.set_voltage(vdd)
        self.vcs_supply.set_voltage(vcs)
        self.vio_supply.set_voltage(vio)

    def rail_voltages(self) -> dict[str, float]:
        """Voltages at the socket pins (remote sense holds setpoints)."""
        return {
            "vdd": self.vdd_supply.voltage_at_load(0.0),
            "vcs": self.vcs_supply.voltage_at_load(0.0),
            "vio": self.vio_supply.voltage_at_load(0.0),
        }


class ExperimentalSystem:
    """Board + chip + cooling: the thing experiments drive."""

    def __init__(
        self,
        persona: ChipPersona = CHIP2,
        calib: Calibration = DEFAULT_CALIBRATION,
        cooling: CoolingSetup = STOCK_HEATSINK_FAN,
        defaults: MeasurementDefaults = DEFAULT_MEASUREMENT,
        seed: int = 0,
    ):
        self.persona = persona
        self.calib = calib
        self.cooling = cooling
        self.defaults = defaults
        self.board = PitonTestBoard(rngs=RngFactory(seed))
        self.board.set_rails(defaults.vdd, defaults.vcs, defaults.vio)
        self.power_model = ChipPowerModel(persona, calib)
        self.freq_hz = defaults.core_clock_hz
        self._protocol = self.board.protocol()

    # ----------------------------------------------------------- configuration
    def set_operating_point(
        self, vdd: float, vcs: float, freq_hz: float, vio: float = 1.80
    ) -> None:
        self.board.set_rails(vdd, vcs, vio)
        self.freq_hz = freq_hz

    def operating_point(self, temp_c: float) -> OperatingPoint:
        rails = self.board.rail_voltages()
        return OperatingPoint(
            vdd=rails["vdd"],
            vcs=rails["vcs"],
            vio=rails["vio"],
            freq_hz=self.freq_hz,
            temp_c=temp_c,
        )

    # --------------------------------------------------------------- thermal
    def settle_temperature(
        self,
        ledger: EventLedger | None = None,
        window_cycles: float | None = None,
    ) -> float:
        """Die temperature once the power-thermal loop settles."""
        ambient = self.cooling.ambient_c
        temp = ambient
        for _ in range(100):
            power = self._true_power(temp, ledger, window_cycles).total_w
            new_temp = ambient + self.cooling.r_ja * power
            if abs(new_temp - temp) < 0.01:
                return new_temp
            temp += 0.5 * (new_temp - temp)
        return temp

    def _true_power(
        self,
        temp_c: float,
        ledger: EventLedger | None,
        window_cycles: float | None,
    ) -> RailPower:
        op = self.operating_point(temp_c)
        power = self.power_model.idle_power(op)
        if ledger is not None:
            if window_cycles is None:
                raise ValueError("workload power needs a cycle window")
            power = power + self.power_model.event_power(
                ledger, window_cycles, op
            )
        return power

    # ------------------------------------------------------------ measurement
    def measure_static(self) -> RailMeasurement:
        """Inputs and clocks grounded (Table V 'static')."""
        # No clock, (almost) no self-heating: settle at static power.
        temp = self.cooling.ambient_c
        for _ in range(50):
            power = self.power_model.static_power(
                self.operating_point(temp)
            ).total_w
            temp = self.cooling.ambient_c + self.cooling.r_ja * power
        power = self.power_model.static_power(self.operating_point(temp))
        return self._protocol.measure_steady(power, self.board.rail_voltages())

    def measure_idle(self) -> RailMeasurement:
        """Clocks driven, resets released, no activity (Table V 'idle')."""
        return self.measure_workload(None, None)

    def measure_workload(
        self,
        ledger: EventLedger | None,
        window_cycles: float | None,
    ) -> RailMeasurement:
        """The standard steady-state measurement of a running workload."""
        temp = self.settle_temperature(ledger, window_cycles)
        power = self._true_power(temp, ledger, window_cycles)
        return self._protocol.measure_steady(power, self.board.rail_voltages())

    def true_total_power_w(
        self,
        ledger: EventLedger | None = None,
        window_cycles: float | None = None,
    ) -> float:
        """Noise-free model power at the settled temperature (for
        tests and cross-checks, not for experiment outputs)."""
        temp = self.settle_temperature(ledger, window_cycles)
        return self._true_power(temp, ledger, window_cycles).total_w
