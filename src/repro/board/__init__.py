"""The virtual Piton test board: rails, instruments, and the
measurement protocol.

Reproduces the measurement *methodology* of Section III: three supply
rails (VDD, VCS, VIO) driven by bench supplies with remote sense, sense
resistors bridging split power planes, I2C voltage monitors polled at
~17 Hz, and the standard protocol of recording 128 samples (~7.5 s)
after steady state and reporting mean +/- sample standard deviation.

Because every experiment's numbers pass through these instruments, the
reproduction inherits the paper's error bars and quantization artefacts
rather than reporting the model's exact outputs.
"""

#: The I2C monitor poll rate of the real bench, in hertz. Section III:
#: 128 samples span "about a 7.5 second time window", i.e. ~17
#: samples/second. Every consumer of the virtual instruments — the
#: 128-sample measurement protocol, the long-duration power logger,
#: and the closed-loop governor's telemetry tick — must sample at this
#: one rate; import it rather than repeating the literal.
MONITOR_POLL_HZ = 17.0

from repro.board.monitor import MeasurementProtocol, RailMeasurement
from repro.board.psu import BenchSupply, OnBoardSupply
from repro.board.sense import SenseResistor, VoltageMonitor
from repro.board.testboard import ExperimentalSystem, PitonTestBoard

__all__ = [
    "MONITOR_POLL_HZ",
    "MeasurementProtocol",
    "RailMeasurement",
    "BenchSupply",
    "OnBoardSupply",
    "SenseResistor",
    "VoltageMonitor",
    "ExperimentalSystem",
    "PitonTestBoard",
]
