"""The virtual Piton test board: rails, instruments, and the
measurement protocol.

Reproduces the measurement *methodology* of Section III: three supply
rails (VDD, VCS, VIO) driven by bench supplies with remote sense, sense
resistors bridging split power planes, I2C voltage monitors polled at
~17 Hz, and the standard protocol of recording 128 samples (~7.5 s)
after steady state and reporting mean +/- sample standard deviation.

Because every experiment's numbers pass through these instruments, the
reproduction inherits the paper's error bars and quantization artefacts
rather than reporting the model's exact outputs.
"""

from repro.board.monitor import MeasurementProtocol, RailMeasurement
from repro.board.psu import BenchSupply, OnBoardSupply
from repro.board.sense import SenseResistor, VoltageMonitor
from repro.board.testboard import ExperimentalSystem, PitonTestBoard

__all__ = [
    "MeasurementProtocol",
    "RailMeasurement",
    "BenchSupply",
    "OnBoardSupply",
    "SenseResistor",
    "VoltageMonitor",
    "ExperimentalSystem",
    "PitonTestBoard",
]
