"""Runtime invariant checkers over the simulator's internal state.

Each checker reads — never mutates — one subsystem and raises
:class:`CheckError` on the first violated invariant, so enabling
checks cannot perturb simulation results: a checked run either
produces bit-identical output to an unchecked one or dies loudly.

The invariants are the properties the experiment pipeline silently
relies on:

* **directory** — MESI safety at the distributed L2 directory (single
  owner, owner/sharer exclusivity, directory/private-state agreement;
  extends :meth:`repro.cache.coherence.DirectoryEntry.check`);
* **store_buffer** — FIFO drain order, occupancy within capacity,
  push/drain conservation, and drain-timer/occupancy agreement;
* **core** — rollback bookkeeping consistency (every rollback is a
  store-buffer or load-miss rollback; issue and stall counts fit in
  the cycle budget);
* **access** — per-operation memory latencies stay positive and
  bounded (a DRAM timeout or a negative-latency bug fails here);
* **mesh** — per-router credit conservation (input queues within
  depth), wormhole lock agreement, global flit conservation
  (injected = ejected + in flight), and forward progress;
* **ledger** — energy-ledger conservation: counts non-negative and
  finite, activity weights within ``[0, count]``, every event priced
  by the calibration and classified by the :mod:`repro.obs` component
  map without loss;
* **thermal** — RC network temperatures bounded by ambient and the
  steady-state ceiling implied by the peak applied power;
* **governor** — closed-loop power-management traces: the power cap is
  never exceeded once the settle window after start/disturbances has
  passed (``gov_cap``), trip/clear hysteresis never actuates twice
  within the advertised dwell (``gov_dwell``), every sample — and
  hence every actuation — lands on the 17 Hz tick grid (``gov_tick``),
  and the energy/work ledgers equal the per-tick sums (``gov_energy``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.cache.coherence import CoherenceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.system import CoherentMemorySystem, MemoryAccessOutcome
    from repro.core.multicore import MulticoreEngine
    from repro.core.pipeline import Core
    from repro.governor.controller import GovernedTrace
    from repro.noc.mesh import MeshNetwork
    from repro.power.calibration import Calibration
    from repro.thermal.rc_network import ThermalNetwork
    from repro.util.events import EventLedger


class CheckError(RuntimeError):
    """A runtime invariant was violated.

    ``checker`` names which checker fired — the fault-injection tests
    assert every fault scenario is caught by the intended checker.
    """

    def __init__(self, checker: str, message: str):
        super().__init__(f"[{checker}] {message}")
        self.checker = checker


#: Memory-access outcome levels the timing model can produce.
_ACCESS_LEVELS = frozenset({"l1", "l15", "l2_local", "l2_remote", "mem"})


class CheckSuite:
    """One run's invariant checkers plus pass/violation counters.

    A suite is attached to at most one simulation at a time (pool
    workers build their own; the counters travel back as a plain dict
    on :class:`~repro.system.SimOutcome`). All methods are pure reads
    of the checked object.
    """

    #: Upper bound on a single memory operation's latency in core
    #: cycles. The worst legitimate path (remote L2 miss + recall +
    #: DRAM under heavy MITTS shaping) stays far below this; a wedged
    #: DRAM model or a latency-accounting bug does not.
    ACCESS_LATENCY_BOUND = 1_000_000

    #: Cycles a mesh with flits in flight may go without moving any
    #: flit before the progress checker calls it wedged. The deepest
    #: legitimate contention (wormhole-blocked worst case on a 5x5
    #: mesh) resolves within tens of cycles.
    MESH_STALL_BOUND = 10_000

    #: Absolute slack for floating-point conservation comparisons.
    EPS = 1e-9

    def __init__(self) -> None:
        #: checker name -> number of times it ran (and passed; the
        #: first failure raises).
        self.counts: dict[str, int] = {}
        self.violations = 0

    # ------------------------------------------------------------- plumbing
    def _ran(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1

    def _fail(self, checker: str, message: str) -> None:
        self.violations += 1
        raise CheckError(checker, message)

    def merge_counts(self, counts: dict[str, int]) -> None:
        """Fold a worker suite's counters into this one."""
        for name, n in counts.items():
            self.counts[name] = self.counts.get(name, 0) + n

    def summary(self) -> dict[str, int]:
        """Picklable view of how many checks ran, by checker."""
        return dict(self.counts)

    @property
    def total_checks(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------ directory
    def check_directory(self, memsys: "CoherentMemorySystem") -> None:
        """MESI directory safety across every L2 slice.

        Delegates to the memory system's own eager invariant walk
        (single writer, directory/private agreement, CDR domains) and
        adds structural validation of the directory entries themselves.
        """
        self._ran("directory")
        try:
            memsys.check_invariants()
        except CoherenceError as exc:
            self._fail("directory", str(exc))
        n = memsys.config.tile_count
        for slice_ in memsys.l2:
            for line, entry in slice_.directory.items():
                if entry.owner is not None and not 0 <= entry.owner < n:
                    self._fail(
                        "directory",
                        f"line {line:#x} owner {entry.owner} out of "
                        f"range at slice {slice_.tile_id}",
                    )
                for tile in entry.sharers:
                    if not 0 <= tile < n:
                        self._fail(
                            "directory",
                            f"line {line:#x} sharer {tile} out of "
                            f"range at slice {slice_.tile_id}",
                        )

    # --------------------------------------------------------- store buffer
    def check_store_buffer(self, core: "Core") -> None:
        """FIFO order, occupancy, conservation, timer agreement."""
        self._ran("store_buffer")
        sb = core.store_buffer
        tile = core.tile_id
        if len(sb) > sb.capacity:
            self._fail(
                "store_buffer",
                f"tile {tile}: occupancy {len(sb)} exceeds capacity "
                f"{sb.capacity}",
            )
        if (sb._head_done_at is None) != sb.empty:
            self._fail(
                "store_buffer",
                f"tile {tile}: drain timer/occupancy disagree "
                f"(head_done_at={sb._head_done_at}, len={len(sb)})",
            )
        seqs = [entry.seq for entry in sb._entries]
        if any(b <= a for a, b in zip(seqs, seqs[1:])):
            self._fail(
                "store_buffer",
                f"tile {tile}: FIFO order violated (seqs {seqs})",
            )
        if sb.pushed != sb.drained + len(sb):
            self._fail(
                "store_buffer",
                f"tile {tile}: store conservation violated "
                f"(pushed {sb.pushed} != drained {sb.drained} + "
                f"buffered {len(sb)})",
            )

    def check_core(self, core: "Core") -> None:
        """Rollback and cycle bookkeeping consistency."""
        self._ran("core")
        st = core.stats
        decomposed = st.store_buffer_rollbacks + st.load_miss_rollbacks
        if st.rollbacks != decomposed:
            self._fail(
                "core",
                f"tile {core.tile_id}: rollbacks {st.rollbacks} != "
                f"store-buffer {st.store_buffer_rollbacks} + "
                f"load-miss {st.load_miss_rollbacks}",
            )
        if st.issued + st.stall_cycles > st.cycles:
            self._fail(
                "core",
                f"tile {core.tile_id}: issued {st.issued} + stalls "
                f"{st.stall_cycles} exceed {st.cycles} cycles "
                "(single-issue violated)",
            )

    # --------------------------------------------------------------- access
    def check_access(self, outcome: "MemoryAccessOutcome") -> None:
        """One memory operation's latency/classification sanity."""
        self._ran("access")
        if not 1 <= outcome.latency <= self.ACCESS_LATENCY_BOUND:
            self._fail(
                "access",
                f"memory access latency {outcome.latency} outside "
                f"[1, {self.ACCESS_LATENCY_BOUND}] "
                f"(level={outcome.level!r})",
            )
        if outcome.level not in _ACCESS_LEVELS:
            self._fail(
                "access", f"unknown access level {outcome.level!r}"
            )
        if outcome.hops < 0:
            self._fail("access", f"negative hop count {outcome.hops}")

    # ----------------------------------------------------------------- mesh
    def check_mesh(self, mesh: "MeshNetwork") -> None:
        """Flit/credit conservation and forward progress."""
        self._ran("mesh")
        in_flight = 0
        for router in mesh.routers:
            for port, ip in router.inputs.items():
                depth = len(ip.queue)
                in_flight += depth
                if depth > router.INPUT_QUEUE_DEPTH:
                    self._fail(
                        "mesh",
                        f"router {router.tile_id} input {port.name} "
                        f"holds {depth} flits > depth "
                        f"{router.INPUT_QUEUE_DEPTH} (credit violated)",
                    )
                lock = ip.locked_output
                if (
                    lock is not None
                    and router.output_locked_by[lock] != port
                ):
                    self._fail(
                        "mesh",
                        f"router {router.tile_id}: input {port.name} "
                        f"locked to {lock.name} but output lock points "
                        f"at {router.output_locked_by[lock]}",
                    )
            for out, locked_in in router.output_locked_by.items():
                if (
                    locked_in is not None
                    and router.inputs[locked_in].locked_output != out
                ):
                    self._fail(
                        "mesh",
                        f"router {router.tile_id}: output {out.name} "
                        f"granted to {locked_in.name} which is not "
                        "locked to it",
                    )
        in_flight += sum(len(q) for q in mesh._inject_queues.values())
        in_flight += sum(len(f) for f in mesh._eject_partial.values())
        expected = mesh.flits_injected - mesh.flits_ejected
        if in_flight != expected:
            self._fail(
                "mesh",
                f"flit conservation violated: injected "
                f"{mesh.flits_injected} - ejected {mesh.flits_ejected} "
                f"= {expected}, but {in_flight} flits are in flight",
            )
        if (
            in_flight
            and mesh.now - mesh.last_progress > self.MESH_STALL_BOUND
        ):
            self._fail(
                "mesh",
                f"no flit moved for {mesh.now - mesh.last_progress} "
                f"cycles with {in_flight} flits in flight "
                "(wedged router?)",
            )

    # --------------------------------------------------------------- ledger
    def check_ledger(
        self,
        ledger: "EventLedger",
        calib: "Calibration | None" = None,
    ) -> None:
        """Energy-ledger conservation.

        Counts must be non-negative and finite, activity weights must
        fit in ``[0, count]`` (per-event activities live in [0, 1]),
        no weight may exist without its count, and — when a
        calibration is supplied — every recorded event must be priced.
        The :mod:`repro.obs` component map must also classify every
        event without loss (the per-component rates in the run
        manifest partition the ledger exactly).
        """
        self._ran("ledger")
        from repro.obs.counters import component_rates

        for name, n in ledger.counts.items():
            if not math.isfinite(n) or n < 0:
                self._fail(
                    "ledger", f"event {name!r} has invalid count {n}"
                )
            w = ledger.weights.get(name, 0.0)
            slack = self.EPS * max(1.0, n)
            if not math.isfinite(w) or w < -slack or w > n + slack:
                self._fail(
                    "ledger",
                    f"event {name!r} activity weight {w} outside "
                    f"[0, {n}] (activity must stay in [0, 1])",
                )
            if calib is not None and n > 0 and calib.energy_for(name) is None:
                self._fail(
                    "ledger",
                    f"event {name!r} ({n:g} recorded) is not priced "
                    "by the calibration — its energy would be lost",
                )
        for name in ledger.weights:
            if name not in ledger.counts:
                self._fail(
                    "ledger",
                    f"weight recorded for {name!r} without a count",
                )
        # The obs component map must partition the ledger exactly: the
        # per-component rates in the run manifest account for every
        # recorded event, with none dropped or double-counted.
        rates = component_rates(ledger.counts, 1.0, 1.0)
        classified = sum(r["events"] for r in rates.values())
        total = sum(ledger.counts.values())
        if abs(classified - total) > self.EPS * max(1.0, total):
            self._fail(
                "ledger",
                f"component rates account for {classified:g} of "
                f"{total:g} recorded events (obs map lost some)",
            )

    # -------------------------------------------------------------- thermal
    def check_thermal(self, network: "ThermalNetwork") -> None:
        """RC temperatures bounded by ambient and the power ceiling.

        With non-negative power driven at the die, no node can cool
        below ambient and no node can exceed the steady state of the
        peak power seen so far (the RC ladder has no overshoot).
        """
        self._ran("thermal")
        peak = network.power_peak_w
        if not math.isfinite(peak) or peak < 0:
            self._fail(
                "thermal", f"invalid peak power {peak} W driven at die"
            )
        ceiling = (
            network.ambient_c + peak * network.total_resistance + 1e-6
        )
        floor = network.ambient_c - 1e-6
        for stage, temp in zip(network.stages, network.temps):
            if not math.isfinite(temp) or not floor <= temp <= ceiling:
                self._fail(
                    "thermal",
                    f"node {stage.name!r} at {temp:.3f} C outside "
                    f"[{floor:.3f}, {ceiling:.3f}] C "
                    f"(ambient {network.ambient_c}, peak {peak:.3f} W)",
                )

    # ------------------------------------------------------------- governor
    def check_governor(self, trace: "GovernedTrace") -> None:
        """Closed-loop control invariants over a governed trace.

        Failures carry the specific invariant as the checker name
        (``gov_cap``/``gov_dwell``/``gov_tick``/``gov_energy``) so the
        fault tests can pin which one caught each injected corruption;
        structural problems fail as plain ``governor``.
        """
        self._ran("governor")
        if not math.isfinite(trace.poll_hz) or trace.poll_hz <= 0:
            self._fail(
                "governor", f"invalid poll rate {trace.poll_hz!r} Hz"
            )
        if trace.n_levels < 1:
            self._fail(
                "governor", f"ladder has {trace.n_levels} levels"
            )
        dt = 1.0 / trace.poll_hz
        for i, s in enumerate(trace.samples):
            if not 0 <= s.level < trace.n_levels:
                self._fail(
                    "governor",
                    f"sample {i} commands level {s.level} outside the "
                    f"{trace.n_levels}-step ladder",
                )
            if not math.isfinite(s.power_w) or s.power_w < 0:
                self._fail(
                    "governor",
                    f"sample {i} has invalid power {s.power_w!r} W",
                )
            # Actuation happens only at monitor ticks: every sample
            # timestamp (actuations included) must sit on the k/poll
            # grid. The slack covers float association order, not a
            # real offset.
            expected = i * dt
            if abs(s.t_s - expected) > self.EPS * max(1.0, expected):
                self._fail(
                    "gov_tick",
                    f"sample {i} at t={s.t_s!r} s is off the "
                    f"{trace.poll_hz:g} Hz tick grid "
                    f"(expected {expected!r} s)",
                )
        if trace.cap_w is not None:
            limit = trace.cap_w * (1.0 + self.EPS)
            for i, s in enumerate(trace.samples):
                if s.power_w > limit and not trace.in_settle_window(
                    s.t_s
                ):
                    self._fail(
                        "gov_cap",
                        f"sample {i} (t={s.t_s:.3f} s) draws "
                        f"{s.power_w:.4f} W over the {trace.cap_w:g} W "
                        "cap outside every settle window",
                    )
        if trace.min_dwell_s > 0:
            acts = trace.actuation_times()
            for a, b in zip(acts, acts[1:]):
                if b - a < trace.min_dwell_s - self.EPS:
                    self._fail(
                        "gov_dwell",
                        f"actuations at {a:.4f} s and {b:.4f} s are "
                        f"{b - a:.4f} s apart, inside the "
                        f"{trace.min_dwell_s:g} s dwell (chatter)",
                    )
        energy = 0.0
        work = 0.0
        for s in trace.samples:
            energy += s.power_w * dt
            work += s.freq_hz * dt
        if abs(energy - trace.energy_j) > self.EPS * max(
            1.0, abs(energy)
        ):
            self._fail(
                "gov_energy",
                f"energy ledger {trace.energy_j!r} J != per-tick sum "
                f"{energy!r} J across throttle events",
            )
        if abs(work - trace.work_cycles) > self.EPS * max(
            1.0, abs(work)
        ):
            self._fail(
                "gov_energy",
                f"work ledger {trace.work_cycles!r} cycles != "
                f"per-tick sum {work!r} cycles",
            )

    # --------------------------------------------------------------- engine
    def check_engine(self, engine: "MulticoreEngine") -> None:
        """Everything reachable from a multicore engine, in one sweep."""
        self.check_directory(engine.memsys)
        for core in engine.cores.values():
            self.check_store_buffer(core)
            self.check_core(core)
        self.check_ledger(engine.ledger)
