"""Runtime correctness tooling: invariant checkers, fault injection,
and the golden-run differential harness.

The paper's results are event-count-driven (instructions retired,
cache hits/misses, flit-hops, stall cycles), so the reproduction is
only as trustworthy as the simulator's internal bookkeeping. This
package turns that bookkeeping into an oracle:

* :class:`CheckSuite` — runtime invariant checkers wired through the
  simulator behind ``RunContext(checks=True)``. Zero-cost when off
  (every hook is an ``is not None`` test, like :data:`NULL_TRACER`);
  when on, the directory-MESI invariants, store-buffer FIFO/rollback
  consistency, per-router flit/credit conservation, energy-ledger
  conservation, and thermal RC boundedness are validated continuously
  during simulation and again at run end.
* :mod:`repro.check.faults` — a deterministic, seeded fault-injection
  harness (directory tag bit-flips, dropped/duplicated flits, stalled
  routers, DRAM timeouts) that exists to prove each checker actually
  fires; every scenario must be detected by at least one checker.
* :mod:`repro.check.golden` — the ``repro verify`` differential
  harness: quick-mode JSON snapshots of every registered experiment
  are committed under ``tests/goldens/`` and live runs are diffed
  against them with per-metric tolerances.
"""

from repro.check.faults import (
    FAULT_KINDS,
    GOVERNOR_FAULT_KINDS,
    FaultReport,
    inject_fault,
    inject_dram_timeout,
    inject_dropped_flit,
    inject_duplicated_flit,
    inject_governor_fault,
    inject_stalled_router,
    inject_tag_bitflip,
)
from repro.check.golden import (
    DEFAULT_GOLDEN_DIR,
    VerifyOutcome,
    VerifyReport,
    diff_documents,
    golden_path,
    strip_document,
    verify_experiments,
)
from repro.check.invariants import CheckError, CheckSuite

__all__ = [
    "CheckError",
    "CheckSuite",
    "DEFAULT_GOLDEN_DIR",
    "FAULT_KINDS",
    "GOVERNOR_FAULT_KINDS",
    "FaultReport",
    "VerifyOutcome",
    "VerifyReport",
    "diff_documents",
    "golden_path",
    "inject_dram_timeout",
    "inject_dropped_flit",
    "inject_duplicated_flit",
    "inject_fault",
    "inject_governor_fault",
    "inject_stalled_router",
    "inject_tag_bitflip",
    "strip_document",
    "verify_experiments",
]
