"""Golden-run differential harness behind ``repro verify``.

Quick-mode JSON documents for every registered experiment are
committed under ``tests/goldens/``; ``repro verify`` re-runs the
experiments and diffs the live documents against the goldens with
per-metric tolerances. The simulator is deterministic, so on one
platform the documents match exactly; the tolerance absorbs
cross-platform floating-point noise without hiding real drift.

Run manifests are stripped before comparison — they record wall
times, which legitimately differ between runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

#: src/repro/check/golden.py -> repository root.
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Where the committed quick-mode snapshots live.
DEFAULT_GOLDEN_DIR = _REPO_ROOT / "tests" / "goldens"

#: Default per-metric tolerances. Quick-mode runs are deterministic;
#: these only absorb libm/platform float noise.
DEFAULT_REL_TOL = 1e-6
DEFAULT_ABS_TOL = 1e-9

#: Per-experiment relative-tolerance overrides (id -> rel tol), for
#: experiments whose metrics amplify float noise (none currently).
REL_TOL_OVERRIDES: dict[str, float] = {}

#: Cap on reported diffs per experiment; the rest are summarized.
MAX_DIFFS = 20


def golden_path(experiment_id: str, goldens_dir: Path | None = None) -> Path:
    return (goldens_dir or DEFAULT_GOLDEN_DIR) / f"{experiment_id}.json"


def strip_document(doc: Mapping[str, object]) -> dict[str, object]:
    """The comparable slice of a result document (no run manifest)."""
    return {k: v for k, v in doc.items() if k != "manifest"}


def live_document(
    experiment_id: str,
    jobs: int = 1,
    checks: bool = False,
    batch: bool = True,
    tier: str = "sim",
    fidelity: float = 0.05,
    profile_dir: str | None = None,
) -> dict[str, object]:
    """Run one experiment quick and return its stripped document.

    ``tier`` defaults to ``"sim"`` — golden verification is the
    bit-identity contract, so the cycle-level simulator is the only
    tier that can honestly sign it. Passing ``"auto"``/``"fast"``
    (with a matching ``rel_tol``) turns the harness into a surrogate
    accuracy check instead.
    """
    from repro.experiments import RunContext, get_spec

    spec = get_spec(experiment_id)
    ctx = RunContext(
        quick=True,
        jobs=jobs if spec.supports_jobs else 1,
        checks=checks,
        batch=batch,
        tier=tier,
        fidelity=fidelity,
        profile_dir=profile_dir,
    )
    doc = strip_document(spec.resolve()(ctx).to_dict())
    # Round-trip through JSON so the live document has exactly the
    # type shape a loaded golden has (e.g. float dict keys become
    # strings); diffing is then always JSON-vs-JSON.
    return json.loads(json.dumps(doc))


# ------------------------------------------------------------------ diffing
def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numbers_close(a: float, b: float, rel_tol: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=DEFAULT_ABS_TOL)


def _diff_value(
    path: str,
    golden: object,
    live: object,
    rel_tol: float,
    out: list[str],
) -> None:
    if _is_number(golden) and _is_number(live):
        if not _numbers_close(float(golden), float(live), rel_tol):
            out.append(
                f"{path}: golden {golden!r} != live {live!r} "
                f"(rel tol {rel_tol:g})"
            )
        return
    if isinstance(golden, Mapping) and isinstance(live, Mapping):
        for key in golden.keys() - live.keys():
            out.append(f"{path}.{key}: missing from live run")
        for key in live.keys() - golden.keys():
            out.append(f"{path}.{key}: not in golden (new metric?)")
        for key in sorted(golden.keys() & live.keys(), key=str):
            _diff_value(f"{path}.{key}", golden[key], live[key], rel_tol, out)
        return
    if isinstance(golden, (list, tuple)) and isinstance(live, (list, tuple)):
        if len(golden) != len(live):
            out.append(
                f"{path}: length {len(golden)} != live {len(live)}"
            )
            return
        for i, (g, l) in enumerate(zip(golden, live)):
            _diff_value(f"{path}[{i}]", g, l, rel_tol, out)
        return
    if golden != live:
        out.append(f"{path}: golden {golden!r} != live {live!r}")


def diff_documents(
    golden: Mapping[str, object],
    live: Mapping[str, object],
    rel_tol: float = DEFAULT_REL_TOL,
) -> list[str]:
    """Human-readable differences between two result documents.

    Empty means the live run matches the golden within tolerance.
    Reports at most :data:`MAX_DIFFS` entries plus a summary line.
    """
    diffs: list[str] = []
    _diff_value(
        "result", strip_document(golden), strip_document(live), rel_tol, diffs
    )
    if len(diffs) > MAX_DIFFS:
        hidden = len(diffs) - MAX_DIFFS
        diffs = diffs[:MAX_DIFFS]
        diffs.append(f"... and {hidden} more difference(s)")
    return diffs


# ------------------------------------------------------------------ verify
@dataclass
class VerifyOutcome:
    """One experiment's verification result."""

    experiment_id: str
    status: str  # "pass" | "fail" | "missing" | "updated"
    diffs: list[str] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("pass", "updated")

    def to_dict(self) -> dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "diffs": list(self.diffs),
            "wall_s": self.wall_s,
        }


@dataclass
class VerifyReport:
    """The full ``repro verify`` outcome, JSON-serializable."""

    outcomes: list[VerifyOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": 1,
            "ok": self.ok,
            "results": [o.to_dict() for o in self.outcomes],
        }


def write_golden(
    experiment_id: str,
    doc: Mapping[str, object],
    goldens_dir: Path | None = None,
) -> Path:
    """Write one experiment's golden snapshot (``verify --update``).

    The write is atomic (temp + fsync + rename) so an interrupted
    ``--update`` can never leave a truncated golden behind.
    """
    from repro.util.io import atomic_write_text

    path = golden_path(experiment_id, goldens_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path,
        json.dumps(strip_document(doc), indent=2, sort_keys=True) + "\n",
    )
    return path


def load_golden(
    experiment_id: str, goldens_dir: Path | None = None
) -> dict[str, object] | None:
    path = golden_path(experiment_id, goldens_dir)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def verify_experiments(
    experiment_ids: Sequence[str],
    goldens_dir: Path | None = None,
    update: bool = False,
    jobs: int = 1,
    rel_tol: float | None = None,
    checks: bool = False,
    batch: bool = True,
    tier: str = "sim",
    fidelity: float = 0.05,
    profile_dir: str | None = None,
) -> VerifyReport:
    """Diff live quick runs against goldens (or refresh the goldens).

    ``rel_tol=None`` uses the default tolerance with per-experiment
    overrides from :data:`REL_TOL_OVERRIDES`.
    """
    import time

    report = VerifyReport()
    for eid in experiment_ids:
        start = time.perf_counter()
        golden = load_golden(eid, goldens_dir)
        if golden is None and not update:
            report.outcomes.append(
                VerifyOutcome(
                    eid,
                    "missing",
                    [
                        f"no golden at {golden_path(eid, goldens_dir)}; "
                        "run `repro verify --update` to create it"
                    ],
                )
            )
            continue
        live = live_document(
            eid,
            jobs=jobs,
            checks=checks,
            batch=batch,
            tier=tier,
            fidelity=fidelity,
            profile_dir=profile_dir,
        )
        if update:
            write_golden(eid, live, goldens_dir)
            outcome = VerifyOutcome(eid, "updated")
        else:
            tol = (
                rel_tol
                if rel_tol is not None
                else REL_TOL_OVERRIDES.get(eid, DEFAULT_REL_TOL)
            )
            diffs = diff_documents(golden, live, rel_tol=tol)
            outcome = VerifyOutcome(
                eid, "pass" if not diffs else "fail", diffs
            )
        outcome.wall_s = time.perf_counter() - start
        report.outcomes.append(outcome)
    return report
