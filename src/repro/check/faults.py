"""Deterministic fault injection against the simulator's bookkeeping.

Each injector corrupts one subsystem the way a real bookkeeping bug
(or a single-event upset in the modelled hardware) would, so the test
suite can prove every :class:`~repro.check.invariants.CheckSuite`
checker actually fires — a checker that never trips under injected
faults is dead weight, not an oracle.

All injectors are seeded and pure functions of the target's current
state: the same seed against the same state corrupts the same site.
They return a :class:`FaultReport` describing exactly what was done,
and raise :class:`RuntimeError` when the target holds no injectable
state (the fault tests drive a small workload first to create sites).

Scenario -> detecting checker:

================== ==========================================
fault              checker that must fire
================== ==========================================
tag bit-flip       ``directory`` (MESI/directory agreement)
dropped flit       ``mesh`` (flit conservation)
duplicated flit    ``mesh`` (flit conservation)
stalled router     ``mesh`` (forward progress)
DRAM timeout       ``access`` (latency bound)
cap breach         ``gov_cap`` (budget soundness)
off-tick sample    ``gov_tick`` (actuation on the tick grid)
hysteresis chatter ``gov_dwell`` (trip/clear dwell spacing)
energy leak        ``gov_energy`` (ledger conservation)
================== ==========================================
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.system import CoherentMemorySystem
    from repro.governor.controller import GovernedTrace
    from repro.noc.mesh import MeshNetwork

#: Every injectable scenario, for tests that sweep all of them.
FAULT_KINDS = (
    "tag_bitflip",
    "dropped_flit",
    "duplicated_flit",
    "stalled_router",
    "dram_timeout",
)

#: Governor-trace corruptions; each must trip the matching
#: ``check_governor`` invariant (see the table above).
GOVERNOR_FAULT_KINDS = (
    "gov_cap_breach",
    "gov_offtick_sample",
    "gov_chatter",
    "gov_energy_leak",
)

#: Execution-layer faults the resilience stack must absorb (as opposed
#: to the simulator-bookkeeping faults above, which the checkers must
#: *detect*). ``worker_crash``/``worker_hang`` arm via environment so
#: they reach pool workers in any process tree — including ``repro``
#: invoked from a shell or CI; ``checkpoint_truncation`` tears the
#: tail off a checkpoint journal the way a crashed filesystem would.
WORKER_FAULT_KINDS = ("worker_crash", "worker_hang", "checkpoint_truncation")

#: ``kind:point`` — e.g. ``worker_crash:0`` crashes whichever worker
#: picks up grid point 0 on its first attempt.
WORKER_FAULT_ENV = "REPRO_WORKER_FAULT"

#: How long a ``worker_hang`` fault wedges the worker (long enough
#: that only the supervisor's deadline can end it).
WORKER_HANG_S = 600.0


@dataclass(frozen=True)
class FaultReport:
    """What one injector corrupted."""

    kind: str
    detail: str


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


# ------------------------------------------------------------- directory
def inject_tag_bitflip(
    memsys: "CoherentMemorySystem", seed: int = 0
) -> FaultReport:
    """Flip directory/private-state bits for one cached line.

    Picks, seeded, among the single-bit corruptions a flaky directory
    SRAM could produce: a bogus sharer beside an exclusive owner, a
    silently promoted private copy (S -> M with no upgrade), a
    directory entry dropped while the line is still cached above, or
    the owner field flipped to another tile.
    """
    from repro.cache.coherence import MesiState

    rng = _rng(seed)
    candidates: list[tuple[str, int, int]] = []
    for slice_ in memsys.l2:
        for line, entry in slice_.directory.items():
            if entry.owner is not None:
                candidates.append(("add_sharer", slice_.tile_id, line))
                candidates.append(("flip_owner", slice_.tile_id, line))
            if not entry.uncached:
                # Dropping a holder-less entry would be invisible;
                # only corrupt entries some tile still caches.
                candidates.append(("drop_entry", slice_.tile_id, line))
    for tile in range(memsys.config.tile_count):
        for line, state in memsys._l15_state[tile].items():
            if state is not MesiState.SHARED:
                continue
            home = memsys.address_map.home_tile(line)
            entry = memsys.l2[home].directory.get(
                memsys.l2[home].line_addr(line)
            )
            # A tile that owns the whole 64B line may hold sibling
            # sub-lines in S legitimately; promoting those would not
            # violate the directory. Target tracked sharers only.
            if entry is not None and tile in entry.sharers:
                candidates.append(("promote_shared", tile, line))
    if not candidates:
        raise RuntimeError(
            "no directory state to corrupt (run a workload first)"
        )
    kind, where, line = rng.choice(sorted(candidates))
    n = memsys.config.tile_count
    if kind == "add_sharer":
        entry = memsys.l2[where].directory[line]
        bogus = (entry.owner + 1) % n
        entry.sharers.add(bogus)
        detail = (
            f"added sharer {bogus} beside owner {entry.owner} of line "
            f"{line:#x} at slice {where}"
        )
    elif kind == "flip_owner":
        entry = memsys.l2[where].directory[line]
        old = entry.owner
        entry.owner = (old + 1) % n
        detail = (
            f"flipped owner of line {line:#x} at slice {where} from "
            f"{old} to {entry.owner}"
        )
    elif kind == "drop_entry":
        del memsys.l2[where].directory[line]
        detail = f"dropped directory entry for line {line:#x} at slice {where}"
    else:  # promote_shared
        memsys._l15_state[where][line] = MesiState.MODIFIED
        detail = (
            f"promoted tile {where}'s shared copy of line {line:#x} "
            "to Modified without an upgrade"
        )
    return FaultReport("tag_bitflip", detail)


# ------------------------------------------------------------------ mesh
def _flit_queues(mesh: "MeshNetwork"):
    """Every queue holding in-flight flits, in deterministic order."""
    queues = []
    for router in mesh.routers:
        for port, ip in sorted(router.inputs.items()):
            queues.append((f"router {router.tile_id} {port.name}", ip.queue))
    for tile in sorted(mesh._inject_queues):
        queues.append((f"inject queue {tile}", mesh._inject_queues[tile]))
    return queues


def inject_dropped_flit(mesh: "MeshNetwork", seed: int = 0) -> FaultReport:
    """Silently drop one in-flight flit (a lost link transfer)."""
    rng = _rng(seed)
    nonempty = [(name, q) for name, q in _flit_queues(mesh) if q]
    if not nonempty:
        raise RuntimeError("no in-flight flits to drop (inject traffic first)")
    name, queue = rng.choice(nonempty)
    index = rng.randrange(len(queue))
    del queue[index]
    return FaultReport("dropped_flit", f"dropped flit {index} from {name}")


def inject_duplicated_flit(
    mesh: "MeshNetwork", seed: int = 0
) -> FaultReport:
    """Duplicate one in-flight flit (a double-latched link transfer)."""
    rng = _rng(seed)
    nonempty = [(name, q) for name, q in _flit_queues(mesh) if q]
    if not nonempty:
        raise RuntimeError(
            "no in-flight flits to duplicate (inject traffic first)"
        )
    name, queue = rng.choice(nonempty)
    queue.append(queue[rng.randrange(len(queue))])
    return FaultReport("duplicated_flit", f"duplicated a flit in {name}")


def inject_stalled_router(
    mesh: "MeshNetwork",
    tile: int | None = None,
    stall_cycles: int = 1 << 30,
    seed: int = 0,
) -> FaultReport:
    """Wedge one router: every input port stalls for ``stall_cycles``.

    When ``tile`` is not given, picks (seeded) a router that currently
    buffers flits — stalling an idle router off the traffic path would
    be a no-op no checker could (or should) flag.
    """
    if tile is None:
        occupied = sorted(
            r.tile_id
            for r in mesh.routers
            if any(ip.queue for ip in r.inputs.values())
        )
        if not occupied:
            raise RuntimeError(
                "no router holds flits to stall (inject traffic first)"
            )
        tile = _rng(seed).choice(occupied)
    router = mesh.routers[tile]
    until = mesh.now + stall_cycles
    for ip in router.inputs.values():
        ip.stall_until = until
    return FaultReport(
        "stalled_router",
        f"stalled router {tile} until cycle {until}",
    )


# ------------------------------------------------------------------ dram
def inject_dram_timeout(
    memsys: "CoherentMemorySystem",
    latency_cycles: int = 10_000_000,
    seed: int = 0,
) -> FaultReport:
    """Make every off-chip access hang for ``latency_cycles``.

    Wraps the memory system's off-chip model; the wrapped model still
    runs (so channel state stays consistent) but the reported latency
    is the timeout, which the ``access`` checker must reject.
    """
    del seed  # uniform fault; kept for the common injector signature
    original = memsys.offchip

    def timed_out(line_addr: int, write: bool = False, now: int = 0) -> int:
        original(line_addr, write, now)
        return latency_cycles

    memsys.offchip = timed_out
    return FaultReport(
        "dram_timeout",
        f"off-chip accesses now take {latency_cycles} cycles",
    )


# ------------------------------------------------------------ worker layer
def arm_worker_fault(kind: str, point: int = 0) -> None:
    """Arm one execution-layer fault for the next supervised grid.

    The arming travels through :data:`WORKER_FAULT_ENV`, so it reaches
    every pool worker forked afterwards (and workers of a ``repro``
    subprocess started with the variable exported). The fault fires on
    the *first attempt* of the chosen grid point only — retries of the
    point run clean, which is exactly the transient-failure shape the
    supervisor exists to absorb.
    """
    if kind not in ("worker_crash", "worker_hang"):
        raise ValueError(
            f"unknown worker fault {kind!r}; armable: "
            "('worker_crash', 'worker_hang')"
        )
    os.environ[WORKER_FAULT_ENV] = f"{kind}:{point}"


def disarm_worker_fault() -> None:
    os.environ.pop(WORKER_FAULT_ENV, None)


def active_worker_fault() -> tuple[str, int] | None:
    """The armed ``(kind, point)``, or ``None``. Malformed specs raise
    (a typo'd chaos run must fail loudly, not silently test nothing)."""
    spec = os.environ.get(WORKER_FAULT_ENV)
    if not spec:
        return None
    try:
        kind, point_text = spec.split(":", 1)
        point = int(point_text)
    except ValueError:
        raise ValueError(
            f"malformed {WORKER_FAULT_ENV}={spec!r}; expected "
            "'worker_crash:POINT' or 'worker_hang:POINT'"
        ) from None
    if kind not in ("worker_crash", "worker_hang"):
        raise ValueError(
            f"unknown worker fault kind {kind!r} in "
            f"{WORKER_FAULT_ENV}={spec!r}"
        )
    return kind, point


def trigger_worker_fault(index: int, attempt: int) -> None:
    """Fire the armed worker fault, if this is its target attempt.

    Called by the supervised pool's worker loop just before a point
    simulates; the parent process (and the in-process serial fallback)
    never calls it, so worker faults are worker-level by construction.
    ``worker_crash`` dies the way a segfaulting or OOM-killed worker
    does — abruptly, with no Python-level cleanup; ``worker_hang``
    wedges until the supervisor's deadline terminates it.
    """
    fault = active_worker_fault()
    if fault is None:
        return
    kind, point = fault
    if index != point or attempt != 0:
        return
    if kind == "worker_crash":
        os._exit(17)
    time.sleep(WORKER_HANG_S)


# ------------------------------------------------------------ serve layer
#: Daemon-level faults the service hardening must absorb.
#: ``task_delay`` stretches every worker task (so tests can observe a
#: job mid-flight: saturate the tier, abort a stream, kill the
#: daemon); ``daemon_kill`` makes the daemon die abruptly right after
#: journaling a job as running — the mid-job SIGKILL scenario.
SERVE_FAULT_KINDS = ("task_delay", "daemon_kill")

#: ``kind:value`` — e.g. ``task_delay:0.5`` (seconds) or
#: ``daemon_kill:1`` (fire on the 1st running transition).
SERVE_FAULT_ENV = "REPRO_SERVE_FAULT"


def arm_serve_fault(kind: str, value: float = 0.0) -> None:
    """Arm one daemon-level fault via the environment.

    Like :func:`arm_worker_fault`, arming travels through the
    environment so it reaches a daemon started as a subprocess.
    ``daemon_kill`` takes the whole process down with ``os._exit`` —
    never arm it for a daemon running inside the test process.
    """
    if kind not in SERVE_FAULT_KINDS:
        raise ValueError(
            f"unknown serve fault {kind!r}; armable: {SERVE_FAULT_KINDS}"
        )
    os.environ[SERVE_FAULT_ENV] = f"{kind}:{value:g}"


def disarm_serve_fault() -> None:
    os.environ.pop(SERVE_FAULT_ENV, None)


def active_serve_fault() -> tuple[str, float] | None:
    """The armed ``(kind, value)``, or ``None``; malformed specs raise."""
    spec = os.environ.get(SERVE_FAULT_ENV)
    if not spec:
        return None
    try:
        kind, value_text = spec.split(":", 1)
        value = float(value_text)
    except ValueError:
        raise ValueError(
            f"malformed {SERVE_FAULT_ENV}={spec!r}; expected "
            "'task_delay:SECONDS' or 'daemon_kill:N'"
        ) from None
    if kind not in SERVE_FAULT_KINDS:
        raise ValueError(
            f"unknown serve fault kind {kind!r} in "
            f"{SERVE_FAULT_ENV}={spec!r}"
        )
    return kind, value


def trigger_serve_task_delay() -> None:
    """Stretch this worker task if ``task_delay`` is armed.

    Called at the top of the service worker body, inside the isolated
    worker process — the daemon itself never sleeps.
    """
    fault = active_serve_fault()
    if fault is not None and fault[0] == "task_delay":
        time.sleep(fault[1])


_DAEMON_KILL_FIRED = 0


def trigger_daemon_kill() -> None:
    """Die abruptly if ``daemon_kill`` is armed and its count is due.

    Called by the daemon right after a job's ``running`` journal
    record lands — the worst moment to die, which is the point. The
    value names which running-transition fires (1 = the first), so a
    recovery test can let a warm-up job through. ``os._exit`` skips
    every finally/atexit, exactly like SIGKILL. Subprocess daemons
    only: in-process use would kill the test runner.
    """
    global _DAEMON_KILL_FIRED
    fault = active_serve_fault()
    if fault is None or fault[0] != "daemon_kill":
        return
    _DAEMON_KILL_FIRED += 1
    if _DAEMON_KILL_FIRED >= int(fault[1]):
        os._exit(9)


def inject_job_journal_truncation(
    jobs_dir: "Path | str", drop_bytes: int = 7, seed: int = 0
) -> FaultReport:
    """Truncate the newest job-journal record (a torn tail write).

    The job journal's CRC framing must quarantine the record on the
    next scan — one lost job, not a crashed recovery loop.
    """
    del seed  # deterministic target; kept for the injector signature
    jobs_dir = Path(jobs_dir)
    records = sorted(
        jobs_dir.glob("*.job"), key=lambda p: p.stat().st_mtime
    )
    if not records:
        raise RuntimeError(
            f"no job records under {jobs_dir} to truncate "
            "(journal a job first)"
        )
    target = records[-1]
    size = target.stat().st_size
    keep = max(0, size - drop_bytes)
    with open(target, "r+b") as fh:
        fh.truncate(keep)
    return FaultReport(
        "job_journal_truncation",
        f"truncated {target.name} from {size} to {keep} bytes",
    )


def inject_checkpoint_truncation(
    journal_dir: "Path | str", drop_bytes: int = 7, seed: int = 0
) -> FaultReport:
    """Truncate the newest checkpoint segment (a torn tail write).

    Models the one corruption the journal's atomic rename cannot rule
    out: a filesystem that lost the tail of an already-renamed segment
    (disk full, dirty shutdown before the data blocks flushed). The
    journal's CRC framing must detect it on resume and re-simulate
    only the damaged point.
    """
    del seed  # deterministic target; kept for the injector signature
    journal_dir = Path(journal_dir)
    segments = sorted(journal_dir.glob("point-*.seg"))
    if not segments:
        raise RuntimeError(
            f"no checkpoint segments under {journal_dir} to truncate "
            "(run a journaled grid first)"
        )
    target = segments[-1]
    size = target.stat().st_size
    keep = max(0, size - drop_bytes)
    with open(target, "r+b") as fh:
        fh.truncate(keep)
    return FaultReport(
        "checkpoint_truncation",
        f"truncated {target.name} from {size} to {keep} bytes",
    )


# -------------------------------------------------------------- governor
def inject_gov_cap_breach(
    trace: "GovernedTrace", seed: int = 0
) -> FaultReport:
    """Rewrite one settled sample's true power above the cap.

    Models a capping loop that silently applied a hotter rung than it
    recorded deciding — the exact bug the soundness invariant exists
    to catch.
    """
    if trace.cap_w is None:
        raise RuntimeError("trace has no cap to breach (run a cap policy)")
    candidates = [
        i
        for i, s in enumerate(trace.samples)
        if not trace.in_settle_window(s.t_s)
    ]
    if not candidates:
        raise RuntimeError(
            "every sample sits in a settle window (run longer)"
        )
    index = _rng(seed).choice(candidates)
    bad_w = trace.cap_w * 1.5
    trace.samples[index] = replace(trace.samples[index], power_w=bad_w)
    return FaultReport(
        "gov_cap_breach",
        f"sample {index} power rewritten to {bad_w:.3f} W over the "
        f"{trace.cap_w:g} W cap",
    )


def inject_gov_offtick_sample(
    trace: "GovernedTrace", seed: int = 0
) -> FaultReport:
    """Shift one sample off the monitor tick grid.

    Models a controller that actuated between telemetry ticks (or a
    trace whose timestamps were accumulated instead of derived).
    """
    if not trace.samples:
        raise RuntimeError("trace has no samples to shift")
    index = _rng(seed).randrange(len(trace.samples))
    shift = 0.37 / trace.poll_hz
    sample = trace.samples[index]
    trace.samples[index] = replace(sample, t_s=sample.t_s + shift)
    return FaultReport(
        "gov_offtick_sample",
        f"sample {index} shifted {shift:.4f} s off the tick grid",
    )


def inject_gov_chatter(
    trace: "GovernedTrace", seed: int = 0
) -> FaultReport:
    """Mark an extra actuation one tick after a real one.

    Models hysteresis without a dwell: trip and clear firing on
    back-to-back ticks around a threshold.
    """
    if trace.min_dwell_s <= 0:
        raise RuntimeError(
            "trace advertises no dwell; chatter is not an invariant "
            "for this policy"
        )
    acts = [i for i, s in enumerate(trace.samples) if s.actuated]
    acts = [i for i in acts if i + 1 < len(trace.samples)]
    if acts:
        index = _rng(seed).choice(acts) + 1
    else:
        if len(trace.samples) < 2:
            raise RuntimeError("trace too short to chatter")
        index = _rng(seed).randrange(len(trace.samples) - 1)
        trace.samples[index] = replace(
            trace.samples[index], actuated=True
        )
        index += 1
    trace.samples[index] = replace(trace.samples[index], actuated=True)
    return FaultReport(
        "gov_chatter",
        f"sample {index} marked actuated one tick after the previous "
        "actuation",
    )


def inject_gov_energy_leak(
    trace: "GovernedTrace", seed: int = 0
) -> FaultReport:
    """Inflate the energy ledger relative to the per-tick sum.

    Models an accumulator bug across throttle events (double-counting
    the actuation tick).
    """
    del seed  # uniform fault; kept for the common injector signature
    old = trace.energy_j
    trace.energy_j = old * 1.01 + 1.0
    return FaultReport(
        "gov_energy_leak",
        f"energy ledger inflated from {old:.3f} J to "
        f"{trace.energy_j:.3f} J",
    )


def inject_governor_fault(
    kind: str, trace: "GovernedTrace", seed: int = 0
) -> FaultReport:
    """Inject one named governor fault into a governed trace."""
    injectors = {
        "gov_cap_breach": inject_gov_cap_breach,
        "gov_offtick_sample": inject_gov_offtick_sample,
        "gov_chatter": inject_gov_chatter,
        "gov_energy_leak": inject_gov_energy_leak,
    }
    if kind not in injectors:
        raise ValueError(
            f"unknown governor fault kind {kind!r}; known: "
            f"{GOVERNOR_FAULT_KINDS}"
        )
    return injectors[kind](trace, seed=seed)


# -------------------------------------------------------------- dispatch
def inject_fault(
    kind: str,
    memsys: "CoherentMemorySystem | None" = None,
    mesh: "MeshNetwork | None" = None,
    seed: int = 0,
) -> FaultReport:
    """Inject one named fault into the supplied target(s)."""
    if kind == "tag_bitflip":
        if memsys is None:
            raise ValueError("tag_bitflip needs a memory system")
        return inject_tag_bitflip(memsys, seed=seed)
    if kind == "dram_timeout":
        if memsys is None:
            raise ValueError("dram_timeout needs a memory system")
        return inject_dram_timeout(memsys, seed=seed)
    if kind in ("dropped_flit", "duplicated_flit", "stalled_router"):
        if mesh is None:
            raise ValueError(f"{kind} needs a mesh network")
        injector = {
            "dropped_flit": inject_dropped_flit,
            "duplicated_flit": inject_duplicated_flit,
            "stalled_router": inject_stalled_router,
        }[kind]
        return injector(mesh, seed=seed)
    raise ValueError(f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
