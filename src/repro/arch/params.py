"""Piton architectural parameters (paper Tables I, II and III).

:class:`PitonConfig` is the single source of truth for the machine being
simulated. The defaults reproduce the taped-out Piton chip exactly;
researchers exploring variants (more tiles, different cache geometries)
construct modified configs — every substrate reads its shape from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.units import KB, MB, MHZ


@dataclass(frozen=True)
class CacheParams:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                "cache size must be divisible by associativity * line size"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class NocParams:
    """Network-on-chip parameters (three identical physical meshes)."""

    count: int = 3
    flit_bits: int = 64
    hop_latency_cycles: int = 1
    turn_penalty_cycles: int = 1


@dataclass(frozen=True)
class SystemClocks:
    """Experimental system interface frequencies (paper Table II), in Hz."""

    gateway_to_piton_hz: float = 180 * MHZ
    gateway_to_chipset_hz: float = 180 * MHZ
    chipset_logic_hz: float = 280 * MHZ
    dram_phy_hz: float = 800 * MHZ  # 1600 MT/s DDR3
    dram_controller_hz: float = 200 * MHZ
    sd_spi_hz: float = 20 * MHZ
    uart_baud: int = 115_200


@dataclass(frozen=True)
class MeasurementDefaults:
    """Default measurement parameters (paper Table III)."""

    vdd: float = 1.00  # core supply, volts
    vcs: float = 1.05  # SRAM supply, volts
    vio: float = 1.80  # I/O supply, volts
    core_clock_hz: float = 500.05 * MHZ
    monitor_poll_hz: float = 17.0
    samples_per_measurement: int = 128


@dataclass(frozen=True)
class PitonConfig:
    """Full chip configuration (paper Table I).

    The ``mesh_width`` x ``mesh_height`` tile array each hold one core;
    the distributed L2 is one slice per tile. ``store_buffer_entries``
    and ``threads_per_core`` drive the pipeline model's rollback and
    interleaving behaviour.
    """

    mesh_width: int = 5
    mesh_height: int = 5
    threads_per_core: int = 2
    pipeline_stages: int = 6
    store_buffer_entries: int = 8

    l1i: CacheParams = field(
        default_factory=lambda: CacheParams(16 * KB, 4, 32)
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(8 * KB, 4, 16)
    )
    l15: CacheParams = field(
        default_factory=lambda: CacheParams(8 * KB, 4, 16)
    )
    l2_slice: CacheParams = field(
        default_factory=lambda: CacheParams(64 * KB, 4, 64)
    )

    noc: NocParams = field(default_factory=NocParams)
    clocks: SystemClocks = field(default_factory=SystemClocks)

    # Off-chip chip-bridge width, bits each direction (pin limited).
    chip_bridge_bits: int = 32

    # Die geometry (paper Section II / Figure 1).
    die_width_mm: float = 6.0
    die_height_mm: float = 6.0
    transistor_count: int = 460_000_000
    # Tile centre-to-centre pitch (paper Section IV-G).
    tile_pitch_x_mm: float = 1.14452
    tile_pitch_y_mm: float = 1.053

    def __post_init__(self) -> None:
        if self.mesh_width <= 0 or self.mesh_height <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.threads_per_core <= 0:
            raise ValueError("threads_per_core must be positive")

    @property
    def tile_count(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def total_threads(self) -> int:
        return self.tile_count * self.threads_per_core

    @property
    def l2_total_bytes(self) -> int:
        return self.l2_slice.size_bytes * self.tile_count

    @property
    def max_hops(self) -> int:
        """Maximum Manhattan hop count across the mesh (8 for 5x5)."""
        return (self.mesh_width - 1) + (self.mesh_height - 1)

    def with_mesh(self, width: int, height: int) -> "PitonConfig":
        """Derive a config with a different tile array (research variant)."""
        return replace(self, mesh_width=width, mesh_height=height)


DEFAULT_MEASUREMENT = MeasurementDefaults()

# Convenience: aggregate L2 per chip matches Table I's 1.6MB.
assert PitonConfig().l2_total_bytes == int(1.5625 * MB)
