"""Figure 8 area breakdown database.

The paper publishes the most detailed area breakdown of an open source
manycore, computed directly from the place-and-route tool at three
levels: chip, tile, and core. We encode those percentages (and the
floorplanned totals) verbatim. The power model uses them as effective-
capacitance and leakage-width proxies: a block's share of switched
capacitance and leakage scales with its cell area, split between the
core (VDD) and SRAM (VCS) rails by the ``sram_fraction`` column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

# Floorplanned totals, mm^2 (Figure 8 captions).
CHIP_AREA = 35.97552
TILE_AREA = 1.17459
CORE_AREA = 0.55205


@dataclass(frozen=True)
class AreaEntry:
    """One block's share of a floorplan level.

    ``percent``      – of the level's floorplanned area (Figure 8).
    ``sram_fraction``– fraction of the block's cell area that is SRAM
                       macro (drawn from the VCS rail); the rest is
                       standard-cell logic on VDD. These fractions are
                       our modelling estimates, not paper data: caches
                       are macro-dominated, logic blocks are zero.
    """

    percent: float
    sram_fraction: float = 0.0


# --- chip level --------------------------------------------------------------
CHIP_BREAKDOWN: Mapping[str, AreaEntry] = {
    "tile0": AreaEntry(3.27),
    "tiles_1_24": AreaEntry(78.37),
    "chip_bridge": AreaEntry(0.12),
    "clock_circuitry": AreaEntry(0.26),
    "io_cells": AreaEntry(3.75),
    "oram": AreaEntry(2.73, sram_fraction=0.50),
    "timing_opt_buffers": AreaEntry(0.07),
    "filler": AreaEntry(9.32),
    "unutilized": AreaEntry(2.12),
}

# --- tile level ---------------------------------------------------------------
TILE_BREAKDOWN: Mapping[str, AreaEntry] = {
    "l2_cache": AreaEntry(22.16, sram_fraction=0.72),
    "l15_cache": AreaEntry(7.62, sram_fraction=0.55),
    "noc1_router": AreaEntry(0.98),
    "noc2_router": AreaEntry(0.95),
    "noc3_router": AreaEntry(0.95),
    "fpu": AreaEntry(2.64),
    "mitts": AreaEntry(0.17),
    "jtag": AreaEntry(0.10),
    "config_regs": AreaEntry(0.05),
    "core": AreaEntry(47.00, sram_fraction=0.38),
    "clock_tree": AreaEntry(0.01),
    "timing_opt_buffers": AreaEntry(0.34),
    "filler": AreaEntry(16.32),
    "unutilized": AreaEntry(0.73),
}

# --- core level ---------------------------------------------------------------
CORE_BREAKDOWN: Mapping[str, AreaEntry] = {
    "fetch": AreaEntry(17.52, sram_fraction=0.70),  # L1 I$ arrays
    "load_store": AreaEntry(22.33, sram_fraction=0.55),  # L1 D$ arrays
    "execute": AreaEntry(2.38),
    "integer_rf": AreaEntry(16.81, sram_fraction=0.60),
    "trap_logic": AreaEntry(6.42),
    "multiply": AreaEntry(1.53),
    "fp_frontend": AreaEntry(1.85),
    "config_regs": AreaEntry(0.11),
    "ccx_buffers": AreaEntry(0.06),
    "clock_tree": AreaEntry(0.13),
    "timing_opt_buffers": AreaEntry(3.83),
    "filler": AreaEntry(26.13),
    "unutilized": AreaEntry(0.90),
}

# Blocks that contribute neither switched capacitance nor leakage in the
# power model (empty silicon / decap fill).
PASSIVE_BLOCKS = frozenset({"filler", "unutilized"})


class AreaBreakdown:
    """Query interface over the three-level Figure 8 database."""

    LEVELS: Mapping[str, tuple[Mapping[str, AreaEntry], float]] = {
        "chip": (CHIP_BREAKDOWN, CHIP_AREA),
        "tile": (TILE_BREAKDOWN, TILE_AREA),
        "core": (CORE_BREAKDOWN, CORE_AREA),
    }

    def entries(self, level: str) -> Mapping[str, AreaEntry]:
        breakdown, _ = self._level(level)
        return breakdown

    def total_mm2(self, level: str) -> float:
        _, total = self._level(level)
        return total

    def block_mm2(self, level: str, block: str) -> float:
        """Absolute area of ``block`` in mm^2."""
        breakdown, total = self._level(level)
        try:
            entry = breakdown[block]
        except KeyError:
            raise KeyError(f"no block {block!r} at level {level!r}") from None
        return total * entry.percent / 100.0

    def active_mm2(self, level: str) -> float:
        """Total non-passive cell area at ``level``."""
        breakdown, total = self._level(level)
        return sum(
            total * e.percent / 100.0
            for name, e in breakdown.items()
            if name not in PASSIVE_BLOCKS
        )

    def sram_mm2(self, level: str) -> float:
        """SRAM-macro area at ``level`` (drawn from the VCS rail)."""
        breakdown, total = self._level(level)
        return sum(
            total * e.percent / 100.0 * e.sram_fraction
            for name, e in breakdown.items()
            if name not in PASSIVE_BLOCKS
        )

    def logic_mm2(self, level: str) -> float:
        """Standard-cell logic area at ``level`` (on the VDD rail)."""
        return self.active_mm2(level) - self.sram_mm2(level)

    def percent_sum(self, level: str) -> float:
        """Sanity metric: reported percentages should total ~100."""
        breakdown, _ = self._level(level)
        return sum(e.percent for e in breakdown.values())

    def _level(self, level: str) -> tuple[Mapping[str, AreaEntry], float]:
        try:
            return self.LEVELS[level]
        except KeyError:
            raise KeyError(
                f"unknown level {level!r}; expected one of {set(self.LEVELS)}"
            ) from None
