"""Architectural description of the Piton chip.

This subpackage encodes the *published* facts about the design — the
Table I parameter summary, the Figure 8 area breakdown, and the die
floorplan geometry — as structured data the simulator and power models
consume. Nothing here is simulated; it is the ground-truth design
database the rest of the library is parameterized by.
"""

from repro.arch.area import AreaBreakdown, CHIP_AREA, CORE_AREA, TILE_AREA
from repro.arch.floorplan import Floorplan, TileCoord
from repro.arch.params import (
    CacheParams,
    DEFAULT_MEASUREMENT,
    MeasurementDefaults,
    NocParams,
    PitonConfig,
    SystemClocks,
)

__all__ = [
    "AreaBreakdown",
    "CHIP_AREA",
    "CORE_AREA",
    "TILE_AREA",
    "Floorplan",
    "TileCoord",
    "CacheParams",
    "DEFAULT_MEASUREMENT",
    "MeasurementDefaults",
    "NocParams",
    "PitonConfig",
    "SystemClocks",
]
