"""Die floorplan geometry: tile coordinates, hop counts, wire lengths.

The NoC energy model needs physical routing distance (the paper quotes
a tile pitch of 1.14452 mm in X and 1.053 mm in Y); the routers need
dimension-ordered hop paths. Both are derived here from the mesh shape
in :class:`~repro.arch.params.PitonConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.arch.params import PitonConfig


@dataclass(frozen=True, order=True)
class TileCoord:
    """(x, y) position in the tile grid; tile 0 is the north-west corner.

    Tiles are numbered row-major to match the paper's Figure 2a: tile 0
    through tile 4 across the top row, tile 20 through 24 across the
    bottom.
    """

    x: int
    y: int


class Floorplan:
    """Geometry queries over a mesh configuration."""

    def __init__(self, config: PitonConfig | None = None):
        self.config = config or PitonConfig()

    # --- numbering ----------------------------------------------------------
    def coord_of(self, tile_id: int) -> TileCoord:
        self._check_tile(tile_id)
        width = self.config.mesh_width
        return TileCoord(tile_id % width, tile_id // width)

    def tile_id_of(self, coord: TileCoord) -> int:
        if not (
            0 <= coord.x < self.config.mesh_width
            and 0 <= coord.y < self.config.mesh_height
        ):
            raise ValueError(f"{coord} outside mesh")
        return coord.y * self.config.mesh_width + coord.x

    def all_tiles(self) -> Iterator[int]:
        return iter(range(self.config.tile_count))

    # --- distance -----------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles."""
        a, b = self.coord_of(src), self.coord_of(dst)
        return abs(a.x - b.x) + abs(a.y - b.y)

    def has_turn(self, src: int, dst: int) -> bool:
        """True when the dimension-ordered route changes dimension."""
        a, b = self.coord_of(src), self.coord_of(dst)
        return a.x != b.x and a.y != b.y

    def route(self, src: int, dst: int) -> list[int]:
        """Dimension-ordered (X then Y) tile path, inclusive of endpoints."""
        a, b = self.coord_of(src), self.coord_of(dst)
        path = [self.tile_id_of(a)]
        x, y = a.x, a.y
        step_x = 1 if b.x > x else -1
        while x != b.x:
            x += step_x
            path.append(self.tile_id_of(TileCoord(x, y)))
        step_y = 1 if b.y > y else -1
        while y != b.y:
            y += step_y
            path.append(self.tile_id_of(TileCoord(x, y)))
        return path

    def wire_length_mm(self, src: int, dst: int) -> float:
        """Physical routing distance of the dimension-ordered path."""
        a, b = self.coord_of(src), self.coord_of(dst)
        return (
            abs(a.x - b.x) * self.config.tile_pitch_x_mm
            + abs(a.y - b.y) * self.config.tile_pitch_y_mm
        )

    def tile_at_hops(self, src: int, hops: int) -> int:
        """A destination tile exactly ``hops`` away from ``src``.

        Mirrors the paper's NoC experiment, which picked tiles along the
        top row then down the east column (tile 1 = 1 hop, tile 2 = 2
        hops, ..., tile 9 = 5 hops, tile 24 = 8 hops from tile 0).
        Prefers pure-X routes, then X+Y.
        """
        self._check_tile(src)
        if hops == 0:
            return src
        if hops < 0 or hops > self.config.max_hops:
            raise ValueError(f"hop count {hops} unreachable in this mesh")
        origin = self.coord_of(src)
        for dy in range(self.config.mesh_height):
            dx = hops - dy
            for sx in (1, -1):
                for sy in (1, -1):
                    x, y = origin.x + sx * dx, origin.y + sy * dy
                    if 0 <= dx and 0 <= x < self.config.mesh_width and (
                        0 <= y < self.config.mesh_height
                    ):
                        return self.tile_id_of(TileCoord(x, y))
        raise ValueError(
            f"no tile exactly {hops} hops from tile {src} in this mesh"
        )

    def max_hops_from(self, tile_id: int) -> int:
        """Farthest Manhattan distance reachable from ``tile_id``."""
        c = self.coord_of(tile_id)
        return max(c.x, self.config.mesh_width - 1 - c.x) + max(
            c.y, self.config.mesh_height - 1 - c.y
        )

    def neighbors(self, tile_id: int) -> list[int]:
        """Mesh-adjacent tiles (2-4 of them)."""
        c = self.coord_of(tile_id)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            x, y = c.x + dx, c.y + dy
            if 0 <= x < self.config.mesh_width and (
                0 <= y < self.config.mesh_height
            ):
                out.append(self.tile_id_of(TileCoord(x, y)))
        return out

    def _check_tile(self, tile_id: int) -> None:
        if not 0 <= tile_id < self.config.tile_count:
            raise ValueError(
                f"tile {tile_id} out of range 0..{self.config.tile_count - 1}"
            )
