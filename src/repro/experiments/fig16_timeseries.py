"""Figure 16: per-rail power time series over a gcc-166 run.

Replays the gcc-166 profile as a phase-structured run: the compiler
alternates between parse/optimize phases with different compute and
memory intensity, and the SD card / serial I/O bursts periodically
(file reads, page-ins), which is what the paper's VIO trace shows as
0-600 mW spikes over a quiet baseline. The monitors sample the
resulting per-rail power at the standard 17 Hz.
"""

from __future__ import annotations

import numpy as np

from repro.board.powerlog import PowerLogger
from repro.board.testboard import ExperimentalSystem
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.chip_power import OperatingPoint, RailPower
from repro.workloads.spec import (
    LINUX_BACKGROUND_W,
    SPEC_PROFILES,
    replay_ledger,
)

#: Figure 16's visible ranges (mW) for shape reference.
PAPER_RANGES = {
    "vdd_mw": (1765.0, 1790.0),
    "vio_mw": (0.0, 600.0),
    "vcs_mw": (268.0, 280.0),
}


def _phase_factor(t: float, rng: np.random.Generator) -> tuple[float, float]:
    """(compute_factor, io_burst_w) at time ``t`` seconds.

    Compute intensity follows slow compiler phases (~90 s); I/O bursts
    arrive every 20-60 s as the compiler reads sources and writes
    objects through the SD card path.
    """
    compute = 1.0 + 0.35 * np.sin(2 * np.pi * t / 90.0) + 0.1 * rng.normal()
    io_burst = 0.0
    # Deterministic burst schedule with jittered amplitudes.
    if (t % 37.0) < 2.5 or (t % 149.0) < 6.0:
        io_burst = float(rng.uniform(0.25, 0.58))
    return max(0.2, compute), io_burst


@experiment_runner
def run(ctx: RunContext, benchmark: str = "gcc-166") -> ExperimentResult:
    quick = ctx.quick
    profile = SPEC_PROFILES[benchmark]
    bench = ExperimentalSystem(seed=23)
    temp = bench.settle_temperature()
    op = OperatingPoint(temp_c=temp)
    idle = bench.power_model.idle_power(op)
    ledger, cycles = replay_ledger(profile)
    mean_activity = bench.power_model.event_power(ledger, cycles, op)

    duration_s = profile.piton_time_s()
    # Compress the sampled window in quick mode.
    sample_span = min(duration_s, 300.0 if quick else 2400.0)
    rng = np.random.default_rng(31)

    def power_at(t: float) -> RailPower:
        compute, io_burst = _phase_factor(t, rng)
        return RailPower(
            vdd_w=idle.vdd_w
            + LINUX_BACKGROUND_W * 0.9
            + mean_activity.vdd_w * compute,
            vcs_w=idle.vcs_w
            + LINUX_BACKGROUND_W * 0.1
            + mean_activity.vcs_w * compute,
            vio_w=idle.vio_w
            + mean_activity.vio_w
            + profile.vio_w * 0.3
            + io_burst,
        )

    # The virtual bench's long-duration logger samples the source at
    # the monitor poll rate, exactly like the published power logs.
    protocol = bench.board.protocol()
    log = PowerLogger(poll_hz=protocol.poll_hz).record(
        power_at, sample_span
    )
    times = log.times_s
    vdd_mw = [w * 1e3 for w in log.vdd_w]
    vcs_mw = [w * 1e3 for w in log.vcs_w]
    vio_mw = [w * 1e3 for w in log.vio_w]

    result = ExperimentResult(
        experiment_id="fig16",
        title=f"Per-rail power time series over {benchmark} "
        f"({sample_span:.0f}s window of a {duration_s / 60:.0f}min run)",
        headers=["Rail", "Mean (mW)", "Min (mW)", "Max (mW)", "Paper range"],
    )
    for rail, series in (
        ("Core (VDD)", vdd_mw),
        ("I/O (VIO)", vio_mw),
        ("SRAM (VCS)", vcs_mw),
    ):
        arr = np.asarray(series)
        key = {
            "Core (VDD)": "vdd_mw",
            "I/O (VIO)": "vio_mw",
            "SRAM (VCS)": "vcs_mw",
        }[rail]
        lo, hi = PAPER_RANGES[key]
        result.rows.append(
            (
                rail,
                round(float(arr.mean()), 1),
                round(float(arr.min()), 1),
                round(float(arr.max()), 1),
                f"{lo:.0f}-{hi:.0f}",
            )
        )
        result.series[key] = [float(v) for v in arr[:: max(1, len(arr) // 400)]]
    result.series["time_s"] = [
        float(v) for v in np.asarray(times)[:: max(1, len(times) // 400)]
    ]
    result.paper_reference = dict(PAPER_RANGES)
    result.notes.append(
        "expected shape: core power oscillates a few percent with "
        "compiler phases; VIO is quiet with tall bursts during file "
        "I/O; SRAM power is flat and small"
    )
    return result
