"""Figure 18: synchronized vs interleaved scheduling of a two-phase app.

The two-phase test application (compute loop / nop loop) runs on all
fifty threads under the same Section IV-J conditions as Figure 17. Per-
phase chip power comes from short cycle-accurate simulations of the two
loops; the power-temperature feedback simulator then integrates each
schedule over several phase periods. Synchronized scheduling swings
between all-compute and all-idle; interleaved keeps 26/24 threads in
opposite phases, halving the swing, shrinking the power-temperature
hysteresis loop, and lowering the average temperature.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import THERMAL_CHIP
from repro.system import PitonSystem
from repro.thermal.cooling import no_heatsink_at_angle
from repro.thermal.feedback import PowerTemperatureSimulator
from repro.workloads.phases import (
    interleaved_schedule,
    phase_tile,
    synchronized_schedule,
)

OPERATING = {"vdd": 0.90, "vcs": 0.95, "freq_hz": 100.01e6}
FAN_ANGLE = 40.0
TOTAL_THREADS = 50

#: Paper headline: interleaved average temperature is 0.22 C lower.
PAPER_DELTA_TEMP_C = 0.22


def _phase_activity_power(system: PitonSystem, kind: str, cores: int):
    """Activity power (above idle) with ``cores`` tiles in one phase."""
    workload = {c: phase_tile(kind) for c in range(cores)}
    run = system.run_workload(
        workload, warmup_cycles=1_500, window_cycles=2_500
    )
    return run.ledger, run.window_cycles


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    duration_s = 90.0 if quick else 180.0
    dt_s = 0.25
    system = PitonSystem.default(
        persona=ctx.resolve_persona(THERMAL_CHIP),
        seed=37,
        tracer=ctx.trace,
        checks=ctx.checks,
    )
    system.set_operating_point(**OPERATING)
    power_model = ChipPowerModel(THERMAL_CHIP, system.calib)
    cooling = no_heatsink_at_angle(FAN_ANGLE)

    # Per-thread activity power of each phase at this operating point,
    # from cycle simulation of 25 tiles (50 threads).
    activity_w = {}
    for kind in ("compute", "idle"):
        ledger, window = _phase_activity_power(system, kind, cores=25)

        def event_w(temp_c: float, ledger=ledger, window=window) -> float:
            op = OperatingPoint(
                vdd=OPERATING["vdd"],
                vcs=OPERATING["vcs"],
                freq_hz=OPERATING["freq_hz"],
                temp_c=temp_c,
            )
            return power_model.event_power(ledger, window, op).total_w

        activity_w[kind] = event_w

    def idle_w(temp_c: float) -> float:
        op = OperatingPoint(
            vdd=OPERATING["vdd"],
            vcs=OPERATING["vcs"],
            freq_hz=OPERATING["freq_hz"],
            temp_c=temp_c,
        )
        return power_model.idle_power(op).total_w

    result = ExperimentResult(
        experiment_id="fig18",
        title="Two-phase app on 50 threads: synchronized vs interleaved "
        "scheduling (power/temperature feedback)",
        headers=[
            "Schedule",
            "Mean power (mW)",
            "Power swing (mW)",
            "Mean surface temp (C)",
            "Hysteresis area (W*C)",
        ],
    )
    mean_temps = {}
    for schedule in (synchronized_schedule(), interleaved_schedule()):
        sim = PowerTemperatureSimulator(cooling, checker=system.checker)

        def power_fn(die_temp: float, t: float, schedule=schedule) -> float:
            compute_threads = schedule.compute_threads_at(t)
            frac = compute_threads / TOTAL_THREADS
            return (
                idle_w(die_temp)
                + frac * activity_w["compute"](die_temp)
                + (1.0 - frac) * activity_w["idle"](die_temp)
            )

        sim.settle(lambda temp, t: power_fn(temp, 0.0))
        samples = sim.run(power_fn, duration_s, dt_s)
        # Discard the first period while the loop settles.
        steady = samples[int(len(samples) * 0.25):]
        powers = np.array([s.power_w for s in steady])
        temps = np.array([s.surface_temp_c for s in steady])
        area = PowerTemperatureSimulator.hysteresis_area(steady)
        mean_temps[schedule.name] = float(temps.mean())
        result.rows.append(
            (
                schedule.name,
                round(float(powers.mean()) * 1e3, 1),
                round(float(powers.max() - powers.min()) * 1e3, 1),
                round(float(temps.mean()), 3),
                round(area, 3),
            )
        )
        result.series[f"{schedule.name}_power_mw"] = [
            float(p * 1e3) for p in powers[::4]
        ]
        result.series[f"{schedule.name}_temp_c"] = [
            float(t) for t in temps[::4]
        ]

    delta = mean_temps["synchronized"] - mean_temps["interleaved"]
    result.series["delta_mean_temp_c"] = [delta]
    result.paper_reference = {"delta_mean_temp_c": PAPER_DELTA_TEMP_C}
    result.notes.append(
        f"interleaved runs {delta:.2f} C cooler on average "
        f"(paper: {PAPER_DELTA_TEMP_C} C); synchronized shows the "
        "larger power-temperature hysteresis loop"
    )
    return result
