"""Figure 9: maximum Linux-boot frequency versus VDD for three chips.

Sweeps VDD from 0.8V to 1.2V (VCS riding 0.05V above) through each
persona's alpha-power Fmax with thermal limiting and PLL-grid
quantization.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.vf_curve import VfCurve
from repro.silicon.variation import CHIP1, CHIP2, CHIP3

VDD_SWEEP = (0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20)

#: Figure 10's frequency labels: the minimum across the three chips at
#: each voltage (the operating points of the static/idle study).
PAPER_MIN_FREQ_MHZ = {
    0.80: 285.74,
    0.85: 360.04,
    0.90: 414.33,
    0.95: 461.59,
    1.00: 514.33,
    1.05: 562.55,
    1.10: 600.06,
    1.15: 621.49,
    1.20: 562.55,
}


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    personas = (CHIP1, CHIP2, CHIP3)
    sweep = VDD_SWEEP[::2] if quick else VDD_SWEEP
    result = ExperimentResult(
        experiment_id="fig9",
        title="Maximum frequency at which Linux boots vs VDD "
        "(VCS = VDD + 0.05V)",
        headers=["VDD (V)"]
        + [f"{p.name} (MHz)" for p in personas]
        + ["min (MHz)", "paper min (MHz)", "thermally limited"],
    )
    for persona in personas:
        result.series[persona.name] = []
    result.series["min"] = []

    curves = {p.name: VfCurve(p) for p in personas}
    for vdd in sweep:
        points = {
            name: curve.boot_frequency(vdd)
            for name, curve in curves.items()
        }
        freqs = {n: pt.fmax_hz / 1e6 for n, pt in points.items()}
        minimum = min(freqs.values())
        limited = [n for n, pt in points.items() if pt.thermally_limited]
        for name, mhz in freqs.items():
            result.series[name].append(mhz)
        result.series["min"].append(minimum)
        result.rows.append(
            (
                vdd,
                *(round(freqs[p.name], 1) for p in personas),
                round(minimum, 1),
                PAPER_MIN_FREQ_MHZ.get(vdd, float("nan")),
                ",".join(limited) if limited else "-",
            )
        )
    result.paper_reference = dict(PAPER_MIN_FREQ_MHZ)
    result.notes.append(
        "error bars: +/- one 7.14 MHz PLL reference-grid step "
        "(quantization, as in the paper)"
    )
    result.notes.append(
        "expected shape: chip1 fastest below 1.0V, thermally limited "
        "first; severe chip1 droop at 1.2V"
    )
    return result
