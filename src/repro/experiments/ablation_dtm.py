"""Ablation: dynamic thermal management on the thermally-limited chip.

Figure 9 shows Chip #1 collapsing at 1.2 V because the *static* Fmax
choice must keep the worst-case thermal fixed point stable. A DTM
governor relaxes that: run fast, throttle reactively when the die
heats. This ablation runs the leaky Chip-#1 persona at 1.2 V under HP
load with (a) the paper's static thermally-safe frequency, (b) a
reactive thermal-throttle governor, and (c) a power-cap governor —
comparing work done, peak temperature, and time spent throttled.
"""

from __future__ import annotations

from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.power.technology import fmax_hz
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.silicon.variation import CHIP1
from repro.thermal.cooling import STOCK_HEATSINK_FAN
from repro.thermal.dtm import (
    GovernedTrace,
    PowerCapGovernor,
    ThermalThrottleGovernor,
)

VDD, VCS = 1.20, 1.25
#: HP-like activity power at the nominal clock (from the Fig 13 runs),
#: scaled with frequency inside the power model below.
ACTIVITY_W_AT_NOMINAL = 1.45
NOMINAL_HZ = 500.05e6
DURATION_S = 500.0


def _power_model():
    model = ChipPowerModel(CHIP1)

    def power_at(freq_hz: float, die_temp_c: float) -> float:
        op = OperatingPoint(
            vdd=VDD, vcs=VCS, freq_hz=freq_hz, temp_c=die_temp_c
        )
        idle = model.idle_power(op).total_w
        activity = (
            ACTIVITY_W_AT_NOMINAL
            * (freq_hz / NOMINAL_HZ)
            * (VDD / 1.0) ** 2
        )
        return idle + activity

    return power_at


def _ladder() -> list[float]:
    top = fmax_hz(VDD, CHIP1)
    return [top * frac for frac in (0.4, 0.55, 0.7, 0.85, 1.0)]


def _static_safe_hz(power_model, trip_c: float = 88.0) -> float:
    """The static policy, done properly: the highest clock whose
    steady-state die temperature under *this* load stays below the
    trip point (the Figure 9 approach, applied to the HP workload)."""
    circuit_max = fmax_hz(VDD, CHIP1)
    lo, hi = 50e6, circuit_max
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        temp = STOCK_HEATSINK_FAN.ambient_c
        for _ in range(200):
            new_temp = STOCK_HEATSINK_FAN.ambient_c + (
                STOCK_HEATSINK_FAN.r_ja * power_model(mid, temp)
            )
            if new_temp > 200.0:
                temp = 201.0
                break
            if abs(new_temp - temp) < 0.01:
                temp = new_temp
                break
            temp += 0.5 * (new_temp - temp)
        if temp <= trip_c:
            lo = mid
        else:
            hi = mid
    return lo


def _static_baseline(duration_s: float) -> GovernedTrace:
    power_model = _power_model()
    safe_hz = _static_safe_hz(power_model)
    governor = ThermalThrottleGovernor(
        [safe_hz], trip_c=1_000.0, clear_c=999.0
    )
    return governor.run(power_model, STOCK_HEATSINK_FAN, duration_s)


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    # Long enough for the heat-sink capacitance to charge and the
    # governor to actually trip.
    duration = 180.0 if quick else DURATION_S
    power_model = _power_model()
    ladder = _ladder()

    result = ExperimentResult(
        experiment_id="ablation_dtm",
        title="DTM on the thermally-limited chip #1 at 1.2V under HP "
        "load",
        headers=[
            "Policy",
            "Mean freq (MHz)",
            "Peak die temp (C)",
            "Throttled (%)",
            "Work vs static (%)",
        ],
    )
    static = _static_baseline(duration)
    cases = [
        ("static thermally-safe clock (paper)", static),
        (
            "reactive throttle (trip 88C)",
            ThermalThrottleGovernor(
                ladder, trip_c=88.0, clear_c=82.0
            ).run(power_model, STOCK_HEATSINK_FAN, duration),
        ),
        (
            "power cap 4.0W",
            PowerCapGovernor(ladder, cap_w=4.0).run(
                power_model, STOCK_HEATSINK_FAN, duration
            ),
        ),
    ]
    base_work = static.work_done()
    for name, trace in cases:
        result.rows.append(
            (
                name,
                round(trace.mean_freq_hz() / 1e6, 1),
                round(trace.peak_temp_c(), 1),
                round(100 * trace.throttled_fraction(), 1),
                round(100 * trace.work_done() / base_work, 1),
            )
        )
        key = name.split(" ")[0]
        result.series[f"{key}_work_ratio"] = [
            trace.work_done() / base_work
        ]
        result.series[f"{key}_peak_c"] = [trace.peak_temp_c()]
    result.notes.append(
        "reactive DTM exploits the package's thermal capacitance: it "
        "runs above the static-safe clock while the heat sink charges, "
        "buying more work at equal peak temperature — the knob the "
        "static Fig 9 limit leaves on the table"
    )
    return result
