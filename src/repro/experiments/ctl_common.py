"""Shared plumbing for the closed-loop ``ctl_*`` experiments.

Each ctl experiment is a small set of :class:`ScenarioSpec` arms run
through one entry point, :func:`run_specs`, which provides the three
guarantees the acceptance tests pin:

* **jobs-identity** — arms fan across
  :func:`~repro.experiments.parallel.parallel_map` (specs are frozen
  values, ``run_scenario`` is module-level, telemetry is seeded per
  spec), so ``--jobs 2`` reproduces serial traces bit for bit;
* **checks-identity** — ``--checks`` audits the finished traces in the
  parent with :meth:`~repro.check.CheckSuite.check_governor`; a
  checked run either matches an unchecked one exactly or dies loudly;
* **counters** — every trace's ``gov_samples`` / ``gov_actuations`` /
  ``gov_cap_violations`` land on the context tracer and ride the run
  manifest's resilience block.
"""

from __future__ import annotations

from repro.experiments.context import RunContext
from repro.experiments.parallel import parallel_map
from repro.governor.controller import GovernedTrace
from repro.governor.scenarios import ScenarioSpec, run_scenario
from repro.silicon.variation import PERSONAS


def persona_name(ctx: RunContext, default_name: str) -> str:
    """Resolve ``--persona`` to a scenario persona name."""
    if ctx.persona is None:
        return default_name
    for name, persona in PERSONAS.items():
        if persona == ctx.persona:
            return name
    raise ValueError(
        "ctl experiments accept only the named personas "
        f"({sorted(PERSONAS)}), not ad-hoc dies"
    )


def run_specs(
    ctx: RunContext, specs: list[ScenarioSpec]
) -> list[GovernedTrace]:
    """Run every arm, audit if asked, and count governor telemetry."""
    traces = parallel_map(run_scenario, specs, jobs=ctx.jobs)
    if ctx.checks:
        from repro.check import CheckSuite

        suite = CheckSuite()
        for trace in traces:
            suite.check_governor(trace)
    tracer = ctx.trace
    for trace in traces:
        tracer.count("gov_samples", trace.gov_samples)
        tracer.count("gov_actuations", trace.gov_actuations)
        tracer.count("gov_cap_violations", trace.cap_violations())
    return traces


def decimate(values: list[float], every: int = 17) -> list[float]:
    """Thin a per-tick series for result documents (default 1 Hz)."""
    return list(values[::every])
