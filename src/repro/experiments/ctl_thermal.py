"""Closed-loop thermal throttling on the leaky Chip #1.

The DTM ablation (``ablation_dtm``) asked the question with scalar toy
governors; this experiment answers it with the real control loop:
Chip #1 under sustained HP-class load, ungoverned at the top ladder
rung versus governed by the hysteretic trip/clear policy sampling the
die at the bench's 17 Hz monitor rate. The ungoverned arm shows why
the paper's static Fmax limit exists (the die runs away past the
leakage-model ceiling); the governed arm holds the trip temperature
exactly while keeping most of the clock.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.ctl_common import decimate, persona_name, run_specs
from repro.experiments.result import ExperimentResult
from repro.governor.scenarios import ScenarioSpec

#: HP-like activity power at the nominal operating point (same figure
#: the DTM ablation uses).
ACTIVITY_W = 2.4
TRIP_C = 88.0
CLEAR_C = 82.0


def _specs(persona: str, duration_s: float) -> list[ScenarioSpec]:
    common = dict(
        persona=persona,
        cooling="stock",
        duration_s=duration_s,
        phases=((0.0, ACTIVITY_W),),
        warm_start=False,  # both arms heat up from ambient
    )
    return [
        ScenarioSpec(name="static", policy="static", **common),
        ScenarioSpec(
            name="governed",
            policy="thermal_trip",
            trip_c=TRIP_C,
            clear_c=CLEAR_C,
            **common,
        ),
    ]


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    duration = 240.0 if ctx.quick else 500.0
    specs = _specs(persona_name(ctx, "chip1"), duration)
    traces = run_specs(ctx, specs)

    result = ExperimentResult(
        experiment_id="ctl_thermal",
        title="Closed-loop thermal throttle vs ungoverned top rung "
        f"(trip {TRIP_C:g}C / clear {CLEAR_C:g}C, 17 Hz loop)",
        headers=[
            "Policy",
            "Mean freq (MHz)",
            "Peak die temp (C)",
            "Throttled (%)",
            "Actuations",
            "Energy (J)",
            "Work vs static (%)",
        ],
    )
    base_work = traces[0].work_cycles
    for spec, trace in zip(specs, traces):
        result.rows.append(
            (
                spec.name,
                round(trace.mean_freq_hz() / 1e6, 1),
                round(trace.peak_temp_c(), 1),
                round(100 * trace.throttled_fraction(), 1),
                trace.gov_actuations,
                round(trace.energy_j, 1),
                round(100 * trace.work_cycles / base_work, 1),
            )
        )
        result.series[f"{spec.name}_temp_c"] = decimate(
            [s.die_temp_c for s in trace.samples]
        )
        result.series[f"{spec.name}_freq_mhz"] = decimate(
            [s.freq_hz / 1e6 for s in trace.samples]
        )
    result.notes.append(
        "the governed arm pins its peak at the trip point by "
        "construction (one-rung hysteretic steps at the 17 Hz monitor "
        "tick, dwell = one die time constant); the static arm "
        "documents the thermal runaway the Fig 9 static limit guards "
        "against"
    )
    return result
