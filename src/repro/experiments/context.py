"""The uniform experiment-runner API.

Every experiment runner takes one :class:`RunContext` — run speed,
parallelism, persona override, telemetry sink, output format — instead
of the historical per-runner keyword grab-bag that forced ``cli.py``
to sniff signatures with :mod:`inspect`. The
:func:`experiment_runner` decorator adapts each module's
``run(ctx, ...)`` implementation to the public protocol: it accepts a
:class:`RunContext` (or ``None`` for the defaults), times the whole
run, and attaches a :class:`~repro.obs.manifest.RunManifest` to the
returned :class:`~repro.experiments.result.ExperimentResult`. The
pre-redesign keyword style (``run(quick=..., jobs=...)``, positional
``run(True)``) went through a deprecation cycle and is now rejected
with a :class:`TypeError` naming the replacement.

Telemetry is opt-in: the default context carries the disabled
:data:`~repro.obs.trace.NULL_TRACER`, whose hooks are no-ops, and the
manifest then records only the run configuration and total wall time.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.obs.manifest import build_manifest
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.result import ExperimentResult
    from repro.resilience import Supervision
    from repro.silicon.variation import ChipPersona
    from repro.surrogate.dispatch import FidelityPolicy

#: Where ``repro run`` keeps checkpoint journals unless told otherwise.
DEFAULT_CHECKPOINT_DIR = "results/checkpoints"


def resolve_auto_jobs() -> int:
    """Worker count for ``jobs=0`` ("auto"): the CPUs this process may
    actually use (``os.process_cpu_count``, honoring affinity masks on
    Python 3.13+), falling back to ``os.cpu_count() or 1``."""
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        resolved = process_cpu_count()
        if resolved:
            return resolved
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunContext:
    """Everything a runner needs to know about *how* to run.

    ``persona=None`` means "the experiment's own default chip" (each
    figure pins the persona the paper measured it on); setting one
    re-characterizes the experiment on another die. ``tracer=None``
    means telemetry off. ``jobs=0`` means "auto": one worker per CPU
    this process may use (resolved at construction, so readers of
    ``ctx.jobs`` always see a concrete count).

    The resilience fields shape the supervised fan-out (see
    :mod:`repro.resilience`): ``retries`` bounds per-point pool
    re-attempts, ``deadline_s`` pins the per-point hang deadline
    (``None`` derives one from completed-point wall times), ``resume``
    loads journaled points from an interrupted campaign instead of
    re-simulating them, and ``checkpoint_dir`` is where journals live.
    None of them can change results — retried points are bit-identical
    reruns and resumed points are the journaled originals; they only
    change what it takes to produce them.
    """

    quick: bool = False
    jobs: int = 1
    persona: "ChipPersona | None" = None
    tracer: Tracer | None = None
    out_format: str = "table"  # "table" | "json"
    #: Run the :mod:`repro.check` invariant checkers during simulation.
    #: Off by default and zero-cost when off (like ``NULL_TRACER``);
    #: when on, results are bit-identical but a bookkeeping violation
    #: raises :class:`~repro.check.invariants.CheckError` immediately.
    checks: bool = False
    #: Coalesce grid points that share a timing class into one
    #: simulation each (see :mod:`repro.batch`). On by default:
    #: batched output is bit-identical to serial by construction, so
    #: the flag only changes wall-clock (``--no-batch`` exists for
    #: A/B timing and for falling back while diagnosing a suspected
    #: batching bug, not because results can differ).
    batch: bool = True
    #: Pool re-attempt budget per grid point (plus one final
    #: in-process attempt once the budget is spent).
    retries: int = 2
    #: Per-point hang deadline in seconds; ``None`` = adaptive.
    deadline_s: float | None = None
    #: Load journaled points from an interrupted run's checkpoint.
    resume: bool = False
    #: Journal location; ``None`` disables checkpoint journaling
    #: (unless ``resume`` asks for the default location).
    checkpoint_dir: str | None = None
    #: Fidelity tier (``--tier``): ``"sim"`` (default) runs every
    #: point on the cycle-level simulator — bit-identical to every
    #: release before the surrogate existed; ``"auto"`` serves points
    #: from the calibrated surrogate when its persisted error bound
    #: fits ``fidelity`` and falls back otherwise; ``"fast"`` serves
    #: every calibrated in-envelope point regardless of bound.
    tier: str = "sim"
    #: Worst acceptable surrogate error bound under ``tier="auto"``
    #: (``--fidelity``), as a relative error (0.05 = 5%).
    fidelity: float = 0.05
    #: Where calibrated workload profiles live; ``None`` = the default
    #: ``results/surrogate`` (see :mod:`repro.surrogate.store`).
    profile_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobs == 0:
            object.__setattr__(self, "jobs", resolve_auto_jobs())
        if self.jobs < 1:
            raise ValueError(
                f"jobs must be >= 1 (or 0 for auto), got {self.jobs}"
            )
        if self.out_format not in ("table", "json"):
            raise ValueError(
                f"out_format must be 'table' or 'json', "
                f"got {self.out_format!r}"
            )
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.tier not in ("sim", "auto", "fast"):
            raise ValueError(
                f"tier must be one of 'sim', 'auto', 'fast', "
                f"got {self.tier!r}"
            )
        if self.fidelity <= 0:
            raise ValueError(
                f"fidelity tolerance must be positive, "
                f"got {self.fidelity}"
            )

    @property
    def trace(self) -> Tracer:
        """The telemetry sink, never ``None`` (disabled -> no-op)."""
        return self.tracer if self.tracer is not None else NULL_TRACER

    def resolve_persona(self, default: "ChipPersona") -> "ChipPersona":
        """The persona override, or the experiment's own default."""
        return self.persona if self.persona is not None else default

    def with_tracer(self, tracer: Tracer | None) -> "RunContext":
        return replace(self, tracer=tracer)

    def supervision(self, experiment_id: str) -> "Supervision | None":
        """The supervised-execution config this context implies.

        ``None`` — the common library default (serial, no resume, no
        checkpoint dir) — keeps :func:`~repro.experiments.parallel.
        parallel_simulate` on its historical zero-cost path. Anything
        that fans out, resumes, or journals gets a
        :class:`~repro.resilience.Supervision` carrying the retry
        policy, the (possibly resumed) checkpoint journal, and this
        context's tracer for the retry/resume counters.
        """
        wants_journal = (
            self.checkpoint_dir is not None or self.resume
        )
        if self.jobs <= 1 and not wants_journal:
            return None
        from repro.resilience import (
            CheckpointJournal,
            RetryPolicy,
            Supervision,
        )

        journal = None
        if wants_journal:
            root = Path(self.checkpoint_dir or DEFAULT_CHECKPOINT_DIR)
            journal = CheckpointJournal(
                root / experiment_id, resume=self.resume
            )
        return Supervision(
            policy=RetryPolicy(
                retries=self.retries, deadline_s=self.deadline_s
            ),
            journal=journal,
            tracer=self.trace,
            experiment_id=experiment_id,
        )

    def fidelity_policy(self) -> "FidelityPolicy | None":
        """The two-tier dispatch policy this context implies.

        ``None`` for ``tier="sim"`` — no surrogate code runs at all,
        and journaled surrogate points are rejected on resume (the
        executors treat a missing policy as "cycle-level required").
        Runners pass this to :func:`~repro.experiments.parallel.
        parallel_simulate` alongside :meth:`supervision`.
        """
        if self.tier == "sim":
            return None
        from repro.surrogate import (
            DEFAULT_PROFILE_DIR,
            FidelityPolicy,
            ProfileStore,
        )

        return FidelityPolicy(
            store=ProfileStore(
                self.profile_dir or DEFAULT_PROFILE_DIR
            ),
            tier=self.tier,
            tolerance=self.fidelity,
            tracer=self.trace,
        )


def experiment_runner(
    fn: Callable[..., "ExperimentResult"],
) -> Callable[..., "ExperimentResult"]:
    """Adapt ``run(ctx, **extras)`` to the public runner protocol.

    The wrapped callable accepts one :class:`RunContext` (or ``None``
    for the defaults)::

        run(RunContext(quick=True, jobs=4))

    Module-specific extras (``cores=``, ``seed=``, ``benchmark=`` ...)
    pass through unchanged. The removed legacy style
    (``run(quick=..., jobs=...)``, positional ``run(True)``) raises a
    :class:`TypeError` spelling out the replacement.
    """

    @functools.wraps(fn)
    def wrapper(
        ctx: RunContext | None = None,
        **extras: object,
    ) -> "ExperimentResult":
        legacy = {"quick", "jobs", "persona", "tracer"} & set(extras)
        if legacy or isinstance(ctx, bool):
            bad = (
                f"keyword(s) {sorted(legacy)}"
                if legacy
                else f"positional {ctx!r}"
            )
            raise TypeError(
                f"{fn.__module__}.run() no longer accepts the legacy "
                f"{bad}; pass a repro.experiments.RunContext instead, "
                "e.g. run(RunContext(quick=True, jobs=4))"
            )
        if ctx is None:
            ctx = RunContext()
        elif not isinstance(ctx, RunContext):
            raise TypeError(
                f"expected RunContext, got {type(ctx).__name__}"
            )

        trace = ctx.trace
        start = time.perf_counter()
        with trace.span("experiment"):
            result = fn(ctx, **extras)
        result.manifest = build_manifest(
            result.experiment_id,
            ctx,
            trace,
            wall_s_total=time.perf_counter() - start,
        )
        return result

    wrapper.__wrapped_runner__ = fn  # type: ignore[attr-defined]
    return wrapper
