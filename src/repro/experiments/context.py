"""The uniform experiment-runner API.

Every experiment runner takes one :class:`RunContext` — run speed,
parallelism, persona override, telemetry sink, output format — instead
of the historical per-runner keyword grab-bag that forced ``cli.py``
to sniff signatures with :mod:`inspect`. The
:func:`experiment_runner` decorator adapts each module's
``run(ctx, ...)`` implementation to:

* accept the legacy call styles (``run()``, ``run(True)``,
  ``run(quick=..., jobs=...)``) by building a ``RunContext`` and
  emitting a :class:`DeprecationWarning`;
* time the whole run and attach a
  :class:`~repro.obs.manifest.RunManifest` to the returned
  :class:`~repro.experiments.result.ExperimentResult`.

Telemetry is opt-in: the default context carries the disabled
:data:`~repro.obs.trace.NULL_TRACER`, whose hooks are no-ops, and the
manifest then records only the run configuration and total wall time.
"""

from __future__ import annotations

import functools
import time
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.obs.manifest import build_manifest
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.result import ExperimentResult
    from repro.silicon.variation import ChipPersona


@dataclass(frozen=True)
class RunContext:
    """Everything a runner needs to know about *how* to run.

    ``persona=None`` means "the experiment's own default chip" (each
    figure pins the persona the paper measured it on); setting one
    re-characterizes the experiment on another die. ``tracer=None``
    means telemetry off.
    """

    quick: bool = False
    jobs: int = 1
    persona: "ChipPersona | None" = None
    tracer: Tracer | None = None
    out_format: str = "table"  # "table" | "json"
    #: Run the :mod:`repro.check` invariant checkers during simulation.
    #: Off by default and zero-cost when off (like ``NULL_TRACER``);
    #: when on, results are bit-identical but a bookkeeping violation
    #: raises :class:`~repro.check.invariants.CheckError` immediately.
    checks: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.out_format not in ("table", "json"):
            raise ValueError(
                f"out_format must be 'table' or 'json', "
                f"got {self.out_format!r}"
            )

    @property
    def trace(self) -> Tracer:
        """The telemetry sink, never ``None`` (disabled -> no-op)."""
        return self.tracer if self.tracer is not None else NULL_TRACER

    def resolve_persona(self, default: "ChipPersona") -> "ChipPersona":
        """The persona override, or the experiment's own default."""
        return self.persona if self.persona is not None else default

    def with_tracer(self, tracer: Tracer | None) -> "RunContext":
        return replace(self, tracer=tracer)


def _legacy_context(
    quick: object, jobs: object, persona: object, tracer: object
) -> RunContext:
    return RunContext(
        quick=bool(quick),
        jobs=int(jobs) if jobs is not None else 1,
        persona=persona,  # type: ignore[arg-type]
        tracer=tracer,  # type: ignore[arg-type]
    )


def experiment_runner(
    fn: Callable[..., "ExperimentResult"],
) -> Callable[..., "ExperimentResult"]:
    """Adapt ``run(ctx, **extras)`` to the public runner protocol.

    The wrapped callable accepts either a :class:`RunContext` (the
    one supported call style) or the pre-redesign keyword style, which
    still works but warns::

        run(RunContext(quick=True, jobs=4))      # current
        run(quick=True, jobs=4)                  # deprecated shim
        run(True)                                # deprecated shim

    Module-specific extras (``cores=``, ``seed=``, ``benchmark=`` ...)
    pass through unchanged in both styles.
    """

    @functools.wraps(fn)
    def wrapper(
        ctx: RunContext | bool | None = None,
        *,
        quick: bool | None = None,
        jobs: int | None = None,
        persona: object = None,
        tracer: object = None,
        **extras: object,
    ) -> "ExperimentResult":
        legacy = (
            quick is not None
            or jobs is not None
            or persona is not None
            or tracer is not None
            or isinstance(ctx, bool)
        )
        if legacy:
            if isinstance(ctx, RunContext):
                raise TypeError(
                    "pass either a RunContext or legacy keyword "
                    "arguments, not both"
                )
            warnings.warn(
                f"{fn.__module__}.run(quick=..., jobs=...) is "
                "deprecated; pass a repro.experiments.RunContext "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if isinstance(ctx, bool):  # old positional run(True)
                quick = ctx if quick is None else quick
            ctx = _legacy_context(quick, jobs, persona, tracer)
        elif ctx is None:
            ctx = RunContext()
        elif not isinstance(ctx, RunContext):
            raise TypeError(
                f"expected RunContext, got {type(ctx).__name__}"
            )

        trace = ctx.trace
        start = time.perf_counter()
        with trace.span("experiment"):
            result = fn(ctx, **extras)
        result.manifest = build_manifest(
            result.experiment_id,
            ctx,
            trace,
            wall_s_total=time.perf_counter() - start,
        )
        return result

    wrapper.__wrapped_runner__ = fn  # type: ignore[attr-defined]
    return wrapper
