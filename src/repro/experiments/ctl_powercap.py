"""Power capping under a workload phase jump: reactive vs PI.

THEAS-style question on the Piton model: hold chip power under a board
budget while the workload steps from light to heavy. Three arms on
Chip #2 — ungoverned (documents the breach), the reactive ladder
solver (re-picks the highest rung under budget every tick), and a PI
controller driving a continuous level command from the *measured*
power (the board's noisy, quantized instruments), rounded onto the
ladder behind a hard over-power protection stage. Both capping arms
must show zero violations outside the settle windows —
``check_governor`` enforces exactly that under ``--checks``.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.ctl_common import decimate, persona_name, run_specs
from repro.experiments.result import ExperimentResult
from repro.governor.scenarios import ScenarioSpec

CAP_W = 3.5
#: Light phase then a heavy phase at half-run (quick timing below).
PHASE_LIGHT_W = 0.9
PHASE_HEAVY_W = 2.2
SENSOR_SEED = 2018
SETTLE_S = 10.0


def _specs(persona: str, duration_s: float) -> list[ScenarioSpec]:
    common = dict(
        persona=persona,
        cooling="stock",
        duration_s=duration_s,
        phases=((0.0, PHASE_LIGHT_W), (duration_s / 2, PHASE_HEAVY_W)),
        sensor_seed=SENSOR_SEED,
        settle_s=SETTLE_S,
    )
    return [
        ScenarioSpec(name="uncapped", policy="static", **common),
        ScenarioSpec(
            name="reactive", policy="reactive_cap", cap_w=CAP_W, **common
        ),
        ScenarioSpec(name="pi", policy="pi_cap", cap_w=CAP_W, **common),
    ]


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    duration = 90.0 if ctx.quick else 180.0
    specs = _specs(persona_name(ctx, "chip2"), duration)
    traces = run_specs(ctx, specs)

    result = ExperimentResult(
        experiment_id="ctl_powercap",
        title=f"Power capping at {CAP_W:g} W across a workload phase "
        "jump (reactive ladder vs PI on measured power)",
        headers=[
            "Policy",
            "Mean power (W)",
            "Peak power (W)",
            "Cap violations",
            "Mean freq (MHz)",
            "Actuations",
            "Energy (J)",
        ],
    )
    for spec, trace in zip(specs, traces):
        result.rows.append(
            (
                spec.name,
                round(trace.mean_power_w(), 3),
                round(max(s.power_w for s in trace.samples), 3),
                trace.cap_violations(),
                round(trace.mean_freq_hz() / 1e6, 1),
                trace.gov_actuations,
                round(trace.energy_j, 1),
            )
        )
        result.series[f"{spec.name}_power_w"] = decimate(
            [s.power_w for s in trace.samples]
        )
        result.series[f"{spec.name}_level"] = decimate(
            [float(s.level) for s in trace.samples]
        )
    result.series["cap_w"] = [CAP_W]
    result.notes.append(
        "cap violations count samples over budget outside the settle "
        "windows (after t=0 and after the phase jump); both governed "
        "arms must report zero — the reactive solver by construction, "
        "the PI through its over-power protection stage. The PI's "
        "extra actuations are dither from regulating against the "
        "board's noisy measured power"
    )
    return result
