"""Ablation: Execution Drafting (McKeown, Balkind & Wentzlaff, MICRO-47).

Piton's core "implements Execution Drafting for energy efficiency when
executing similar code on the two threads" (Section II) — but the paper
never measures it. This ablation does: the Int loop runs on both
hardware threads of each core with drafting disabled and enabled, and
reports the EPI-style energy saving. When the two threads execute the
same program in lockstep, the front-end work (fetch/decode) of the
trailing thread drafts behind the leader.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.epi import energy_per_instruction
from repro.silicon.variation import CHIP2
from repro.system import PitonSystem
from repro.workloads.base import TileProgram
from repro.workloads.microbench import PATTERN_A, PATTERN_B, int_program


@experiment_runner
def run(ctx: RunContext, cores: int | None = None) -> ExperimentResult:
    quick = ctx.quick
    cores = cores if cores is not None else (4 if quick else 25)
    window = 3_000 if quick else 6_000
    system = PitonSystem.default(
        persona=ctx.resolve_persona(CHIP2),
        seed=41,
        tracer=ctx.trace,
        checks=ctx.checks,
    )
    p_idle = system.measure_idle().core

    program = int_program()
    tile = TileProgram(
        programs=[program, program],
        init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1},
    )
    workload = {t: tile for t in range(cores)}

    result = ExperimentResult(
        experiment_id="ablation_drafting",
        title=f"Execution Drafting ablation (Int, 2 T/C on {cores} "
        "cores, identical threads)",
        headers=[
            "Configuration",
            "Chip power (mW)",
            "Energy/instr (pJ)",
            "Instr events (drafted fraction)",
        ],
    )
    energies = {}
    for drafting in (False, True):
        run_ = system.run_workload(
            workload,
            warmup_cycles=1_500,
            window_cycles=window,
            execution_drafting=drafting,
        )
        epi = energy_per_instruction(
            run_.measurement.core, p_idle, system.freq_hz, 1, cores=cores
        )
        issued = run_.result.instructions
        charged = sum(
            count
            for name, count in run_.ledger.counts.items()
            if name.startswith("instr.")
        )
        drafted_fraction = 1.0 - charged / max(1, issued)
        label = "drafting" if drafting else "baseline"
        energies[label] = epi.value
        result.rows.append(
            (
                label,
                round(run_.measurement.core.value * 1e3, 1),
                round(epi.value / 1e-12, 1),
                f"{drafted_fraction:.2f}",
            )
        )
    saving = 1.0 - energies["drafting"] / energies["baseline"]
    result.series["energy_saving_fraction"] = [saving]
    result.notes.append(
        f"drafting saves {100 * saving:.1f}% of per-instruction energy "
        "on identical-thread code (the MICRO-47 mechanism's target "
        "workload); dissimilar threads draft nothing"
    )
    return result
