"""Registry mapping experiment ids to runners *and their metadata*.

Each entry is an :class:`ExperimentSpec`: the runner module, a
one-line description, whether the experiment fans simulations across
worker processes (``supports_jobs``), and — for figure experiments —
which result series to chart and the y-axis label (``chart``). The
CLI, the benchmark harness, and ``repro list --json`` all read this
metadata instead of keeping their own tables or sniffing runner
signatures.

Runners are imported lazily so that importing the registry (e.g. from
the examples) stays cheap and a bug in one experiment module cannot
break enumeration of the others.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from repro.experiments.result import ExperimentResult


@dataclass(frozen=True)
class ChartSpec:
    """Which series of a figure result to draw, and the y-axis label."""

    series: tuple[str, ...]
    y_label: str


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the tooling needs to know about one experiment."""

    experiment_id: str
    module: str
    description: str
    supports_jobs: bool = False
    chart: ChartSpec | None = None

    @property
    def chartable(self) -> bool:
        return self.chart is not None

    def resolve(self) -> Callable[..., ExperimentResult]:
        """Import the runner module and return its ``run`` callable."""
        return importlib.import_module(self.module).run

    def metadata(self) -> dict[str, object]:
        """JSON-friendly view (``repro list --json``)."""
        return {
            "id": self.experiment_id,
            "module": self.module,
            "description": self.description,
            "supports_jobs": self.supports_jobs,
            "chartable": self.chartable,
            "chart": (
                {
                    "series": list(self.chart.series),
                    "y_label": self.chart.y_label,
                }
                if self.chart is not None
                else None
            ),
        }


def _spec(
    experiment_id: str,
    module_stem: str,
    description: str,
    supports_jobs: bool = False,
    chart: ChartSpec | None = None,
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=experiment_id,
        module=f"repro.experiments.{module_stem}",
        description=description,
        supports_jobs=supports_jobs,
        chart=chart,
    )


_SPECS = (
    _spec(
        "table4",
        "table4_yield",
        "Chip testing statistics (yield buckets of 32 tested die)",
    ),
    _spec(
        "fig8",
        "fig8_area",
        "Area breakdown at chip/tile/core levels",
    ),
    _spec(
        "fig9",
        "fig9_vf",
        "Max Linux-boot frequency vs VDD for three chips",
        chart=ChartSpec(("chip1", "chip2", "chip3"), "MHz"),
    ),
    _spec(
        "fig10",
        "fig10_static_idle",
        "Static and idle power vs voltage/frequency (and Table V)",
        chart=ChartSpec(("idle_total_mw", "static_total_mw"), "mW"),
    ),
    _spec(
        "fig11",
        "fig11_epi",
        "Energy per instruction by class and operand value (and Table VI)",
        supports_jobs=True,
    ),
    _spec(
        "table7",
        "table7_memory",
        "Memory system energy for cache hit/miss scenarios",
    ),
    _spec(
        "fig12",
        "fig12_noc",
        "NoC energy per flit vs hop count and switching pattern",
        chart=ChartSpec(("NSW", "HSW", "FSW", "FSWA"), "pJ"),
    ),
    _spec(
        "fig13",
        "fig13_scaling",
        "Power scaling with core count (Int/HP/Hist, 1 and 2 T/C)",
        supports_jobs=True,
        chart=ChartSpec(
            (
                "Int_1tc",
                "Int_2tc",
                "HP_1tc",
                "HP_2tc",
                "Hist_1tc",
                "Hist_2tc",
            ),
            "mW",
        ),
    ),
    _spec(
        "fig14",
        "fig14_mt_mc",
        "Multithreading vs multicore power and energy",
        supports_jobs=True,
    ),
    _spec(
        "table8",
        "table8_specs",
        "Sun Fire T2000 and Piton system specifications",
    ),
    _spec(
        "table9",
        "table9_spec",
        "SPECint 2006 performance, power, and energy",
    ),
    _spec(
        "fig15",
        "fig15_latency",
        "Memory-latency breakdown of a ldx round trip",
    ),
    _spec(
        "fig16",
        "fig16_timeseries",
        "Per-rail power time series over a gcc-166 run",
        chart=ChartSpec(("vdd_mw", "vio_mw", "vcs_mw"), "mW"),
    ),
    _spec(
        "fig17",
        "fig17_thermal",
        "Chip power vs package temperature for active thread counts",
    ),
    _spec(
        "fig18",
        "fig18_scheduling",
        "Synchronized vs interleaved scheduling power/temperature",
    ),
    _spec(
        "table10",
        "table10_related",
        "Industry/academic processor comparison survey",
    ),
    # --- ablations: mechanisms the chip carries but the paper never
    # exercises (DESIGN.md extensions) --------------------------------------
    _spec(
        "ablation_drafting",
        "ablation_drafting",
        "Execution Drafting energy saving on identical threads",
    ),
    _spec(
        "ablation_dvfs",
        "ablation_dvfs",
        "Energy-optimal DVFS point for fixed work",
    ),
    _spec(
        "ablation_mitts",
        "ablation_mitts",
        "MITTS bandwidth shaping between two tenants",
    ),
    _spec(
        "ablation_multichip",
        "ablation_multichip",
        "Cross-socket shared-memory cost and the CDR saving",
    ),
    _spec(
        "ablation_dtm",
        "ablation_dtm",
        "Dynamic thermal management vs the static Fmax limit",
    ),
    # --- closed-loop power management: repro.governor scenarios ------------
    _spec(
        "ctl_thermal",
        "ctl_thermal",
        "Closed-loop thermal throttle vs ungoverned top rung",
        supports_jobs=True,
        chart=ChartSpec(("static_temp_c", "governed_temp_c"), "C"),
    ),
    _spec(
        "ctl_powercap",
        "ctl_powercap",
        "Power capping across a phase jump: reactive vs PI",
        supports_jobs=True,
        chart=ChartSpec(
            ("uncapped_power_w", "reactive_power_w", "pi_power_w"), "W"
        ),
    ),
    _spec(
        "ctl_race_vs_pace",
        "ctl_race_vs_pace",
        "Race-to-idle vs pace-to-deadline for a fixed work quantum",
        supports_jobs=True,
        chart=ChartSpec(("race_power_w", "pace_power_w"), "W"),
    ),
    _spec(
        "ctl_fan_failure",
        "ctl_fan_failure",
        "Fan failure/recovery hysteresis on the passive camera setup",
        supports_jobs=True,
        chart=ChartSpec(("static_temp_c", "governed_temp_c"), "C"),
    ),
)

#: experiment id -> spec, in paper order.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in _SPECS
}


def experiments_document() -> list[dict[str, object]]:
    """The registry metadata document, in paper order — the one
    serializer behind ``repro list --json`` and the daemon's
    ``GET /v1/experiments``."""
    return [spec.metadata() for spec in EXPERIMENTS.values()]


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Return one experiment's registry entry."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Return the ``run`` callable for one experiment id."""
    return get_spec(experiment_id).resolve()
