"""Registry mapping experiment ids to runner callables.

Runners are imported lazily so that importing the registry (e.g. from
the examples) stays cheap and a bug in one experiment module cannot
break enumeration of the others.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.experiments.result import ExperimentResult

#: experiment id -> (module, one-line description)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "table4": (
        "repro.experiments.table4_yield",
        "Chip testing statistics (yield buckets of 32 tested die)",
    ),
    "fig8": (
        "repro.experiments.fig8_area",
        "Area breakdown at chip/tile/core levels",
    ),
    "fig9": (
        "repro.experiments.fig9_vf",
        "Max Linux-boot frequency vs VDD for three chips",
    ),
    "fig10": (
        "repro.experiments.fig10_static_idle",
        "Static and idle power vs voltage/frequency (and Table V)",
    ),
    "fig11": (
        "repro.experiments.fig11_epi",
        "Energy per instruction by class and operand value (and Table VI)",
    ),
    "table7": (
        "repro.experiments.table7_memory",
        "Memory system energy for cache hit/miss scenarios",
    ),
    "fig12": (
        "repro.experiments.fig12_noc",
        "NoC energy per flit vs hop count and switching pattern",
    ),
    "fig13": (
        "repro.experiments.fig13_scaling",
        "Power scaling with core count (Int/HP/Hist, 1 and 2 T/C)",
    ),
    "fig14": (
        "repro.experiments.fig14_mt_mc",
        "Multithreading vs multicore power and energy",
    ),
    "table8": (
        "repro.experiments.table8_specs",
        "Sun Fire T2000 and Piton system specifications",
    ),
    "table9": (
        "repro.experiments.table9_spec",
        "SPECint 2006 performance, power, and energy",
    ),
    "fig15": (
        "repro.experiments.fig15_latency",
        "Memory-latency breakdown of a ldx round trip",
    ),
    "fig16": (
        "repro.experiments.fig16_timeseries",
        "Per-rail power time series over a gcc-166 run",
    ),
    "fig17": (
        "repro.experiments.fig17_thermal",
        "Chip power vs package temperature for active thread counts",
    ),
    "fig18": (
        "repro.experiments.fig18_scheduling",
        "Synchronized vs interleaved scheduling power/temperature",
    ),
    "table10": (
        "repro.experiments.table10_related",
        "Industry/academic processor comparison survey",
    ),
    # --- ablations: mechanisms the chip carries but the paper never
    # exercises (DESIGN.md extensions) --------------------------------------
    "ablation_drafting": (
        "repro.experiments.ablation_drafting",
        "Execution Drafting energy saving on identical threads",
    ),
    "ablation_dvfs": (
        "repro.experiments.ablation_dvfs",
        "Energy-optimal DVFS point for fixed work",
    ),
    "ablation_mitts": (
        "repro.experiments.ablation_mitts",
        "MITTS bandwidth shaping between two tenants",
    ),
    "ablation_multichip": (
        "repro.experiments.ablation_multichip",
        "Cross-socket shared-memory cost and the CDR saving",
    ),
    "ablation_dtm": (
        "repro.experiments.ablation_dtm",
        "Dynamic thermal management vs the static Fmax limit",
    ),
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Return the ``run`` callable for one experiment id."""
    try:
        module_name, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    module = importlib.import_module(module_name)
    return module.run
