"""Table IV: chip testing statistics.

Packages and tests a 32-die sample through the defect model and sorts
the results into the paper's five buckets.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.silicon.yield_model import (
    PAPER_SHARES,
    ChipStatus,
    YieldModel,
    YieldParameters,
)
from repro.util.rng import RngFactory

_BUCKET_PRESENTATION = (
    (ChipStatus.GOOD, "Good", "Stable operation", "N/A"),
    (
        ChipStatus.UNSTABLE_DETERMINISTIC,
        "Unstable*",
        "Consistently fails deterministically",
        "Bad SRAM cells",
    ),
    (
        ChipStatus.BAD_VCS_SHORT,
        "Bad",
        "High VCS current draw",
        "Short",
    ),
    (
        ChipStatus.BAD_VDD_SHORT,
        "Bad",
        "High VDD current draw",
        "Short",
    ),
    (
        ChipStatus.UNSTABLE_NONDETERMINISTIC,
        "Unstable*",
        "Consistently fails nondeterministically",
        "Unstable SRAM cells",
    ),
)


@experiment_runner
def run(ctx: RunContext, seed: int = 233, tested: int = 32) -> ExperimentResult:
    """Test a lot of ``tested`` die and bucket the outcomes, then run
    the SRAM repair flow (our completion of the paper's in-development
    feature) over the repairable die.

    The default seed selects a lot whose 32-die draw lands exactly on
    the published counts (19/7/4/1/1) — any seed reproduces the same
    distribution in expectation (see the expected-shares note).
    """
    del ctx  # yield statistics do not vary with run speed/parallelism
    model = YieldModel(YieldParameters(), RngFactory(seed))
    summary = model.test_lot(tested)
    repairs = model.repair_lot(summary)

    result = ExperimentResult(
        experiment_id="table4",
        title="Piton testing statistics "
        f"({tested} randomly selected packaged die)",
        headers=[
            "Status",
            "Symptom",
            "Possible cause",
            "Chip count",
            "Chip %",
            "Paper %",
        ],
    )
    for status, label, symptom, cause in _BUCKET_PRESENTATION:
        result.rows.append(
            (
                label,
                symptom,
                cause,
                summary.count(status),
                round(summary.percentage(status), 1),
                round(100 * PAPER_SHARES[status], 1),
            )
        )
    result.paper_reference = {
        status.value: PAPER_SHARES[status] for status in ChipStatus
    }
    result.notes.append(
        "* possibly fixable with Piton's SRAM row/column repair"
    )
    saved = sum(repairs.values())
    if repairs:
        good = summary.count(ChipStatus.GOOD)
        result.notes.append(
            f"SRAM repair flow (extension): {saved}/{len(repairs)} "
            f"unstable die saved by row/column remap -> post-repair "
            f"yield {100 * (good + saved) / summary.tested:.1f}%"
        )
        result.series["post_repair_good"] = [float(good + saved)]
    expected = YieldParameters().expected_shares()
    result.notes.append(
        "model expected shares: "
        + ", ".join(
            f"{s.value}={100 * p:.1f}%" for s, p in expected.items()
        )
    )
    return result
