"""Race-to-idle vs pace-to-deadline for a fixed work quantum.

The paper's Fig 9 energy-optimal point argument made statically is
replayed here as a control decision: given 18 Gcycles of work and a
60 s deadline on Chip #2, is it cheaper to race at the top rung and
idle at the bottom, or to pace at the slowest rung that still makes
the deadline? On this chip the convex E(V,f) curve makes pacing win —
the race arm buys slack it cannot spend, at quadratic voltage cost.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.ctl_common import decimate, persona_name, run_specs
from repro.experiments.result import ExperimentResult
from repro.governor.scenarios import ScenarioSpec

WORK_GCYCLES = 18.0
DEADLINE_S = 60.0
#: Restrict the ladder to the paper's sub-1.0 V region where the
#: energy-per-cycle curve is clearly convex.
VDD_GRID = (0.80, 0.85, 0.90, 0.95, 1.00)
ACTIVITY_W = 1.45


def _specs(persona: str) -> list[ScenarioSpec]:
    common = dict(
        persona=persona,
        cooling="stock",
        vdd_grid=VDD_GRID,
        duration_s=DEADLINE_S,
        phases=((0.0, ACTIVITY_W),),
        work_gcycles=WORK_GCYCLES,
        deadline_s=DEADLINE_S,
    )
    return [
        ScenarioSpec(name="race", policy="race", **common),
        ScenarioSpec(name="pace", policy="pace", **common),
    ]


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    specs = _specs(persona_name(ctx, "chip2"))
    traces = run_specs(ctx, specs)

    result = ExperimentResult(
        experiment_id="ctl_race_vs_pace",
        title=f"Race-to-idle vs pace-to-deadline: {WORK_GCYCLES:g} "
        f"Gcycles under a {DEADLINE_S:g} s deadline",
        headers=[
            "Policy",
            "Done at (s)",
            "Energy (J)",
            "Mean power (W)",
            "Peak die temp (C)",
            "EDP (J*s)",
        ],
    )
    work_cycles = WORK_GCYCLES * 1e9
    for spec, trace in zip(specs, traces):
        done_s = trace.completion_time_s(work_cycles)
        result.rows.append(
            (
                spec.name,
                round(done_s, 1),
                round(trace.energy_j, 1),
                round(trace.mean_power_w(), 3),
                round(trace.peak_temp_c(), 1),
                round(trace.energy_j * done_s, 1),
            )
        )
        result.series[f"{spec.name}_power_w"] = decimate(
            [s.power_w for s in trace.samples]
        )
        result.series[f"{spec.name}_freq_mhz"] = decimate(
            [s.freq_hz / 1e6 for s in trace.samples]
        )
    result.notes.append(
        "energy is the full-window ledger (race keeps paying idle "
        "power after finishing); pacing wins energy on the convex "
        "sub-1.0 V region even before counting the race arm's higher "
        "die temperature and leakage"
    )
    return result
