"""Figure 8: detailed area breakdown at chip, tile, and core levels.

Rolls the area database up exactly as the paper presents it and adds
the derived quantities the power model consumes (active/SRAM/logic
area), which is the sense in which this figure "gives context to the
power and energy characterization".
"""

from __future__ import annotations

from repro.arch.area import AreaBreakdown
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    del ctx  # static area tables: nothing varies with the context
    area = AreaBreakdown()
    result = ExperimentResult(
        experiment_id="fig8",
        title="Area breakdown (percent of floorplanned area)",
        headers=["Level", "Block", "Percent", "mm^2"],
    )
    for level in ("chip", "tile", "core"):
        for name, entry in sorted(
            area.entries(level).items(), key=lambda kv: -kv[1].percent
        ):
            result.rows.append(
                (
                    level,
                    name,
                    entry.percent,
                    round(area.block_mm2(level, name), 5),
                )
            )
    for level in ("chip", "tile", "core"):
        result.series[f"{level}_total_mm2"] = [area.total_mm2(level)]
        result.series[f"{level}_sram_mm2"] = [area.sram_mm2(level)]
        result.series[f"{level}_logic_mm2"] = [area.logic_mm2(level)]
        result.notes.append(
            f"{level}: total {area.total_mm2(level):.5f} mm^2, "
            f"percent sum {area.percent_sum(level):.2f}, "
            f"SRAM {area.sram_mm2(level):.3f} mm^2 / "
            f"logic {area.logic_mm2(level):.3f} mm^2 (model split)"
        )
    result.paper_reference = {
        "chip_total_mm2": 35.97552,
        "tile_total_mm2": 1.17459,
        "core_total_mm2": 0.55205,
        "core_percent_of_tile": 47.00,
        "l2_percent_of_tile": 22.16,
    }
    return result
