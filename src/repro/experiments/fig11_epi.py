"""Figure 11 (and Table VI): energy per instruction by class and
operand value.

For every instruction class the paper characterizes, run the unrolled
assembly loop on all cores, measure steady-state power, and apply the
paper's EPI equation with the Table VI latency. Instructions with input
operands sweep minimum / random / maximum values.
"""

from __future__ import annotations

from repro.experiments.parallel import parallel_simulate
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.isa.operands import OperandPolicy
from repro.power.epi import energy_per_instruction, subtract_filler_energy
from repro.silicon.variation import CHIP2
from repro.sweepspec import expand_grid
from repro.system import PitonSystem
from repro.util.stats import Measurement
from repro.workloads.epi_tests import (
    FIGURE11_INSTRUCTIONS,
    STX_NOP_PAD,
    build_named_epi_workload,
    has_operand_sweep,
)

POLICIES = (
    OperandPolicy.MINIMUM,
    OperandPolicy.RANDOM,
    OperandPolicy.MAXIMUM,
)

#: Anchors the paper states numerically (Section IV-E/IV-F): the ldx
#: L1-hit energy, and the three-adds-equal-one-ldx observation.
PAPER_ANCHORS = {
    "ldx_random_pj": 286.46,
    "add_random_pj": 286.46 / 3.0,
}


def _build_epi_request(
    system: PitonSystem,
    name: str,
    policy: OperandPolicy,
    cores: int,
    window_cycles: int,
):
    """Assemble one EPI test point as (test, SimRequest)."""
    workload = {}
    test = None
    for tile in range(cores):
        test, tile_program = build_named_epi_workload(
            name, policy, tile, seed=3
        )
        workload[tile] = tile_program
    assert test is not None
    # Warm-up covers the first pass through any memory working set:
    # with all cores' first touches missing to DRAM concurrently, the
    # 20-line-per-core fill takes ~130 queued channel cycles per line.
    info = workload[0].programs[0]
    touches_memory = any(
        i.info.is_load or i.info.is_store for i in info
    )
    warmup = (
        max(12_000, 130 * 20 * len(workload))
        if touches_memory
        else 12_000
    )
    request = system.sim_request(
        workload, warmup_cycles=warmup, window_cycles=window_cycles
    )
    return test, request


def _epi_from_outcome(
    system: PitonSystem,
    test,
    outcome,
    cores: int,
    p_idle: Measurement,
    nop_epi: Measurement | None,
) -> tuple[Measurement, int]:
    """Measure one simulated EPI test and apply the paper's equation."""
    run = system.measure_outcome(outcome)
    epi = energy_per_instruction(
        run.measurement.core,
        p_idle,
        system.freq_hz,
        test.latency_cycles,
        cores=cores,
    )
    if test.fillers_per_target:
        if nop_epi is None:
            raise RuntimeError("nop EPI must be measured before stx (NF)")
        epi = subtract_filler_energy(epi, nop_epi, STX_NOP_PAD)
    return epi, test.latency_cycles


@experiment_runner
def run(ctx: RunContext, cores: int | None = None) -> ExperimentResult:
    quick = ctx.quick
    cores = cores if cores is not None else (4 if quick else 25)
    window = 3_000 if quick else 6_000
    system = PitonSystem.default(
        persona=ctx.resolve_persona(CHIP2),
        seed=5,
        tracer=ctx.trace,
        checks=ctx.checks,
    )

    # One point per (instruction, operand policy), in table order. The
    # simulations fan out; the idle measurement and the per-point
    # measurements below replay serially in this same order, keeping
    # the bench RNG stream identical to a serial run. On the serial
    # path the generator defers each point's workload build and
    # simulation until its measurement comes due (so ``tests`` is
    # always populated before it is read).
    grid = expand_grid(
        (name for name, _ in FIGURE11_INSTRUCTIONS),
        lambda name: (
            POLICIES
            if has_operand_sweep(name)
            else (OperandPolicy.RANDOM,)
        ),
    )
    tests: dict[tuple[str, OperandPolicy], object] = {}

    def requests():
        for name, policy in grid:
            test, request = _build_epi_request(
                system, name, policy, cores, window
            )
            tests[(name, policy)] = test
            yield request

    outcomes = parallel_simulate(
        requests(),
        jobs=ctx.jobs,
        tracer=ctx.trace,
        supervision=ctx.supervision("fig11"),
        batch=ctx.batch,
        fidelity=ctx.fidelity_policy(),
    )

    p_idle = system.measure_idle().core

    result = ExperimentResult(
        experiment_id="fig11",
        title=f"Energy per instruction ({cores} cores, idle-subtracted)",
        headers=[
            "Instruction",
            "Latency (cycles)",
            "EPI min (pJ)",
            "EPI random (pJ)",
            "EPI max (pJ)",
        ],
    )
    nop_epi: Measurement | None = None
    for name, label in FIGURE11_INSTRUCTIONS:
        policies = POLICIES if has_operand_sweep(name) else (
            OperandPolicy.RANDOM,
        )
        epis: dict[OperandPolicy, Measurement] = {}
        latency = 0
        for policy in policies:
            # Pull the outcome first: on the serial path this triggers
            # the deferred build+simulate that fills ``tests``.
            outcome = next(outcomes)
            epis[policy], latency = _epi_from_outcome(
                system,
                tests[(name, policy)],
                outcome,
                cores,
                p_idle,
                nop_epi,
            )
        if name == "nop":
            nop_epi = epis[OperandPolicy.RANDOM]

        def fmt(policy: OperandPolicy) -> object:
            if policy not in epis:
                return "-"
            return round(epis[policy].value / 1e-12, 1)

        result.rows.append(
            (
                label,
                latency,
                fmt(OperandPolicy.MINIMUM),
                fmt(OperandPolicy.RANDOM),
                fmt(OperandPolicy.MAXIMUM),
            )
        )
        result.series[label] = [
            epis[p].value / 1e-12 for p in POLICIES if p in epis
        ]

    result.paper_reference = dict(PAPER_ANCHORS)
    result.notes.append(
        "expected shape: EPI grows with latency class; operand values "
        "move EPI substantially (min < random < max); "
        "3 x EPI(add) ~ EPI(ldx L1 hit); stx (F) > stx (NF) by the "
        "roll-back energy"
    )
    return result
