"""Generic measurement sweeps over operating points and personas.

The paper's figures are specific sweeps (voltage, core count, hops,
temperature). This utility generalizes the pattern for library users:
define a grid over (persona, VDD, frequency policy, workload), get a
tidy list of measurement records with derived columns — the plumbing
every "characterize X versus Y" study repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience import Supervision
    from repro.surrogate.dispatch import FidelityPolicy
from repro.power.vf_curve import VfCurve
from repro.silicon.variation import CHIP2, ChipPersona
from repro.system import PitonSystem
from repro.util.tables import render_table
from repro.workloads.base import TileProgram


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell to measure."""

    persona: ChipPersona
    vdd: float
    freq_hz: float | None = None  # None -> Fmax(VDD) for the persona

    def resolved_freq_hz(self) -> float:
        if self.freq_hz is not None:
            return self.freq_hz
        return VfCurve(self.persona).boot_frequency(self.vdd).fmax_hz


@dataclass
class SweepRecord:
    """Measurement at one grid cell."""

    persona: str
    vdd: float
    freq_mhz: float
    idle_core_mw: float
    active_core_mw: float
    ipc: float
    energy_per_instr_pj: float


@dataclass
class SweepResult:
    records: list[SweepRecord] = field(default_factory=list)

    def column(self, name: str) -> list[float]:
        return [getattr(r, name) for r in self.records]

    def render(self) -> str:
        rows = [
            (
                r.persona,
                r.vdd,
                round(r.freq_mhz, 1),
                round(r.idle_core_mw, 1),
                round(r.active_core_mw, 1),
                round(r.ipc, 2),
                round(r.energy_per_instr_pj, 1),
            )
            for r in self.records
        ]
        return render_table(
            [
                "persona",
                "VDD",
                "f (MHz)",
                "idle (mW)",
                "active (mW)",
                "IPC",
                "E/instr (pJ)",
            ],
            rows,
            title="operating-point sweep",
        )


#: workload_factory(tile) -> TileProgram: one program set per tile.
WorkloadFactory = Callable[[int], TileProgram]


def build_requests(
    points: Iterable[SweepPoint],
    workload_factory: WorkloadFactory,
    tiles: Sequence[int] = (0,),
    warmup_cycles: int = 2_000,
    window_cycles: int = 4_000,
    seed: int = 0,
    tracer: "Tracer | None" = None,
):
    """Build every grid point's bench and simulation request, in order.

    This is the one request-construction path shared by :func:`sweep`,
    :meth:`repro.sweepspec.SweepSpec.requests`, and the ``repro
    serve`` daemon — they must all produce byte-identical requests so
    checkpoint journals and the content-addressed result cache key the
    same point the same way everywhere.

    Returns ``(systems, requests)``: ``systems[i]`` is
    ``(point, resolved_freq_hz, PitonSystem)`` for the measurement
    replay, ``requests[i]`` the matching picklable
    :class:`~repro.system.SimRequest`.
    """
    systems: list[tuple[SweepPoint, float, PitonSystem]] = []
    requests = []
    for point in points:
        freq = point.resolved_freq_hz()
        system = PitonSystem.default(
            persona=point.persona, seed=seed, tracer=tracer
        )
        system.set_operating_point(point.vdd, point.vdd + 0.05, freq)
        systems.append((point, freq, system))
        requests.append(
            system.sim_request(
                {tile: workload_factory(tile) for tile in tiles},
                warmup_cycles=warmup_cycles,
                window_cycles=window_cycles,
            )
        )
    return systems, requests


def sweep(
    points: Iterable[SweepPoint],
    workload_factory: WorkloadFactory,
    tiles: Sequence[int] = (0,),
    warmup_cycles: int = 2_000,
    window_cycles: int = 4_000,
    seed: int = 0,
    jobs: int = 1,
    tracer: "Tracer | None" = None,
    supervision: "Supervision | None" = None,
    batch: bool = True,
    fidelity: "FidelityPolicy | None" = None,
) -> SweepResult:
    """Measure ``workload_factory`` at every grid point.

    Energy per instruction here is total *activity* energy over the
    window divided by instructions issued — the workload-level analogue
    of the paper's per-instruction EPI.

    ``jobs > 1`` fans the per-point simulations across worker
    processes; every point gets its own bench (its own RNG stream
    seeded with ``seed``), and measurements run serially in grid
    order, so results are identical for any ``jobs``. An enabled
    ``tracer`` collects per-point wall times and measurement spans,
    exactly as the registry experiments do. ``supervision`` (see
    :mod:`repro.resilience`) adds retry/deadline handling and
    checkpoint journaling, again without touching results.

    ``batch`` (default on) coalesces grid points sharing a timing
    class into one simulation each (see :mod:`repro.batch`) — the
    common case for this function, since persona and VDD never affect
    the simulation, and the core clock only matters to workloads that
    reach the off-chip path. Results are bit-identical either way.

    ``fidelity`` (from :meth:`RunContext.fidelity_policy`, or a
    :class:`~repro.surrogate.FidelityPolicy` built directly) is the
    two-tier dispatcher: calibrated points within tolerance skip the
    simulator entirely and are priced through the same measurement
    replay. This is the fast path that turns dense V/f grids over
    *distinct* timing classes — the points batching cannot coalesce —
    from hours into seconds.
    """
    from repro.experiments.parallel import parallel_simulate

    result = SweepResult()
    systems, requests = build_requests(
        points,
        workload_factory,
        tiles=tiles,
        warmup_cycles=warmup_cycles,
        window_cycles=window_cycles,
        seed=seed,
        tracer=tracer,
    )
    outcomes = parallel_simulate(
        requests,
        jobs=jobs,
        tracer=tracer,
        supervision=supervision,
        batch=batch,
        fidelity=fidelity,
    )

    for (point, freq, system), outcome in zip(systems, outcomes):
        idle = system.measure_idle().core.value
        run = system.measure_outcome(outcome)
        active = run.measurement.core.value - idle
        instructions = max(1, run.result.instructions)
        window_s = run.window_cycles / freq
        result.records.append(
            SweepRecord(
                persona=point.persona.name,
                vdd=point.vdd,
                freq_mhz=freq / 1e6,
                idle_core_mw=idle * 1e3,
                active_core_mw=active * 1e3,
                ipc=run.ipc,
                energy_per_instr_pj=active * window_s / instructions
                / 1e-12,
            )
        )
    return result


def voltage_grid(
    vdds: Sequence[float], personas: Sequence[ChipPersona] = (CHIP2,)
) -> list[SweepPoint]:
    """The most common grid: VDD sweep at Fmax, per persona."""
    return [
        SweepPoint(persona=p, vdd=v) for p in personas for v in vdds
    ]
