"""Table IX: SPECint 2006 performance, power, and energy.

Replays each benchmark profile through the Piton and UltraSPARC T1
latency models for execution time, and through the Piton power model
(event ledger + Linux background + VIO activity) for average power.
Energy is power times time, as in the paper.
"""

from __future__ import annotations

from repro.board.testboard import ExperimentalSystem
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.chip_power import OperatingPoint
from repro.workloads.spec import (
    LINUX_BACKGROUND_W,
    SPEC_PROFILES,
    replay_ledger,
)

#: Published Table IX, for reference columns:
#: name -> (t1_minutes, piton_minutes, slowdown, power_w, energy_kj)
PAPER_TABLE9 = {
    "bzip2-chicken": (11.74, 57.36, 4.89, 2.199, 7.566),
    "bzip2-source": (23.62, 129.02, 5.46, 2.119, 16.404),
    "gcc-166": (5.72, 38.28, 6.70, 2.094, 4.809),
    "gcc-200": (9.21, 70.67, 7.67, 2.156, 9.139),
    "gobmk-13x13": (16.67, 77.51, 4.65, 2.127, 9.889),
    "h264ref-foreman-baseline": (22.76, 71.08, 3.12, 2.149, 9.162),
    "hmmer-nph3": (48.38, 164.94, 3.41, 2.400, 23.750),
    "libquantum": (201.61, 1175.70, 5.83, 2.287, 161.363),
    "omnetpp": (72.94, 727.04, 9.97, 2.096, 91.431),
    "perlbench-checkspam": (11.57, 92.56, 8.00, 2.137, 11.863),
    "perlbench-diffmail": (23.13, 184.37, 7.97, 2.141, 22.320),
    "sjeng": (122.07, 569.22, 4.66, 2.080, 71.043),
    "xalancbmk": (102.99, 730.03, 7.09, 2.148, 94.077),
}


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    del ctx  # profile replay: nothing varies with the context
    bench = ExperimentalSystem(seed=19)
    # Power during a SPEC run: idle + one busy core's events + the
    # Linux background on the other cores + the profile's VIO activity.
    temp = bench.settle_temperature()
    op = OperatingPoint(temp_c=temp)
    idle = bench.power_model.idle_power(op)

    result = ExperimentResult(
        experiment_id="table9",
        title="SPECint 2006 on UltraSPARC T1 (model) vs Piton (model)",
        headers=[
            "Benchmark/input",
            "T1 time (min)",
            "Piton time (min)",
            "Slowdown",
            "Piton power (W)",
            "Piton energy (kJ)",
            "Paper: time/slowdown/power/energy",
        ],
    )
    for name, profile in SPEC_PROFILES.items():
        ledger, cycles = replay_ledger(profile)
        activity = bench.power_model.event_power(ledger, cycles, op)
        # The Table IX power column tracks the chip's VDD+VCS rails
        # plus benchmark I/O activity (the VIO idle/clock floor is
        # excluded, as in the paper's accounting).
        total_w = (
            idle.core_w
            + activity.core_w
            + LINUX_BACKGROUND_W
            + profile.vio_w
        )
        piton_s = profile.piton_time_s()
        t1_s = profile.t1_time_s()
        energy_kj = total_w * piton_s / 1e3
        paper = PAPER_TABLE9[name]
        result.rows.append(
            (
                name,
                round(t1_s / 60, 2),
                round(piton_s / 60, 2),
                round(piton_s / t1_s, 2),
                round(total_w, 3),
                round(energy_kj, 3),
                f"{paper[1]}min/{paper[2]}x/{paper[3]}W/{paper[4]}kJ",
            )
        )
        result.series[name] = [
            piton_s / 60,
            piton_s / t1_s,
            total_w,
            energy_kj,
        ]
    result.paper_reference = {
        name: {
            "t1_min": row[0],
            "piton_min": row[1],
            "slowdown": row[2],
            "power_w": row[3],
            "energy_kj": row[4],
        }
        for name, row in PAPER_TABLE9.items()
    }
    result.notes.append(
        "expected shape: slowdowns 3-10x driven by the 2x clock gap and "
        "the 848ns-vs-108ns memory gap; power near idle with hmmer and "
        "libquantum elevated by I/O; energy tracks execution time"
    )
    return result
