"""Figure 15: cycle breakdown of a ldx round trip from tile 0 to DRAM.

Prints the named latency segments (normalized to the 500.05 MHz core
clock, as the paper presents them) and cross-checks the total against
both the paper's ~395-cycle / ~790 ns figure and a live simulation of
an actual missing load through the full system.
"""

from __future__ import annotations

from repro.chip.offchip import FIG15_SEGMENTS, OffChipPath, fig15_total_cycles
from repro.cache.system import CoherentMemorySystem
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.util.events import EventLedger

PAPER_TOTAL_CYCLES = 395
PAPER_TOTAL_NS = 790.0
CORE_CLOCK_HZ = 500.05e6


def _simulated_miss_cycles() -> int:
    """One cold ldx from tile 0 through the live model."""
    ledger = EventLedger()
    offchip = OffChipPath(ledger=ledger)
    memsys = CoherentMemorySystem(ledger=ledger, offchip=offchip)
    # Address homed at tile 0 (low-order interleave: line 0 homes at 0).
    outcome = memsys.load(0, 0x0)
    return outcome.latency


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    del ctx  # analytic latency walk: nothing varies with the context
    result = ExperimentResult(
        experiment_id="fig15",
        title="Piton system memory latency breakdown (ldx from tile 0, "
        "cycles at 500.05 MHz)",
        headers=["Component", "Segment", "Direction", "Cycles", "ns"],
    )
    ns_per_cycle = 1e9 / CORE_CLOCK_HZ
    for segment in FIG15_SEGMENTS:
        result.rows.append(
            (
                segment.component,
                segment.name,
                segment.direction,
                segment.cycles,
                round(segment.cycles * ns_per_cycle, 1),
            )
        )
    total = fig15_total_cycles()
    simulated = _simulated_miss_cycles()
    result.rows.append(
        ("TOTAL", "nominal round trip", "-", total,
         round(total * ns_per_cycle, 1))
    )
    result.rows.append(
        ("TOTAL", "simulated cold miss", "-", simulated,
         round(simulated * ns_per_cycle, 1))
    )
    result.series["total_cycles"] = [float(total)]
    result.series["simulated_cycles"] = [float(simulated)]
    result.paper_reference = {
        "total_cycles": PAPER_TOTAL_CYCLES,
        "total_ns": PAPER_TOTAL_NS,
    }
    result.notes.append(
        "the gateway FPGA and off-chip buffering dominate: the paper's "
        "point that an on-board DRAM (or on-chip controller) would "
        "remove most of this latency"
    )
    return result
