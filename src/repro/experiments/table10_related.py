"""Table X: comparison of industry and academic processors.

Bibliographic, not experimental: a static dataset plus renderer, kept
for completeness of the reproduction and used by the docs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult


@dataclass(frozen=True)
class ProcessorEntry:
    name: str
    origin: str  # "Academic" | "Industry"
    scale: str  # "Unicore" | "Multicore" | "Manycore"
    open_source: bool
    characterized: bool
    note: str = ""


TABLE10 = (
    ProcessorEntry("Intel Xeon Phi Knights Corner", "Industry", "Manycore",
                   False, True, "[23], [24]"),
    ProcessorEntry("Intel Xeon Phi Knights Landing", "Industry", "Manycore",
                   False, False),
    ProcessorEntry("Intel Xeon E5-2670", "Industry", "Multicore",
                   False, True, "[26]"),
    ProcessorEntry("Marvell MV78460 (Cortex-A9)", "Industry", "Multicore",
                   False, True, "[26]"),
    ProcessorEntry("TI 66AK2E05 (Cortex-A15)", "Industry", "Multicore",
                   False, True, "[26]"),
    ProcessorEntry("Cavium ThunderX", "Industry", "Manycore", False, False),
    ProcessorEntry("Phytium Mars", "Industry", "Manycore", False, False),
    ProcessorEntry("Qualcomm Centriq 2400", "Industry", "Manycore",
                   False, False),
    ProcessorEntry("Tilera Tile-64", "Industry", "Manycore", False, False),
    ProcessorEntry("Tilera TILE-Gx100", "Industry", "Manycore", False, False),
    ProcessorEntry("Sun UltraSPARC T1/T2", "Industry", "Multicore",
                   True, False),
    ProcessorEntry("IBM POWER7", "Industry", "Multicore", False, True,
                   "[65]"),
    ProcessorEntry("MIT Raw", "Academic", "Manycore", False, True, "[33]"),
    ProcessorEntry("UT Austin TRIPS", "Academic", "Multicore", False, False),
    ProcessorEntry("UC Berkeley 45nm RISC-V", "Academic", "Unicore",
                   True, False, "minor power numbers only"),
    ProcessorEntry("UC Berkeley 28nm RISC-V", "Academic", "Multicore",
                   True, False, "DC-DC converter characterization only"),
    ProcessorEntry("MIT SCORPIO", "Academic", "Manycore", False, False),
    ProcessorEntry("U. Michigan Centip3De", "Academic", "Manycore",
                   False, True, "[54]"),
    ProcessorEntry("NCSU AnyCore", "Academic", "Unicore", True, False,
                   "minor power numbers only"),
    ProcessorEntry("NCSU H3", "Academic", "Multicore", True, False),
    ProcessorEntry("Celerity", "Academic", "Manycore", True, False),
    ProcessorEntry("Princeton Piton", "Academic", "Manycore", True, True,
                   "this work"),
)


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    del ctx  # survey table: nothing varies with the context
    result = ExperimentResult(
        experiment_id="table10",
        title="Industry and academic silicon: openness and published "
        "power characterization",
        headers=[
            "Processor",
            "Academic/Industry",
            "Scale",
            "Open source",
            "Detailed power char.",
            "Notes",
        ],
    )
    for entry in TABLE10:
        result.rows.append(
            (
                entry.name,
                entry.origin,
                entry.scale,
                "yes" if entry.open_source else "no",
                "yes" if entry.characterized else "no",
                entry.note,
            )
        )
    open_and_characterized = [
        e.name for e in TABLE10 if e.open_source and e.characterized
    ]
    result.series["open_and_characterized_count"] = [
        float(len(open_and_characterized))
    ]
    result.paper_reference = {"open_and_characterized": ["Princeton Piton"]}
    result.notes.append(
        "the paper's claim reproduced structurally: Piton is the only "
        "open-source manycore with a detailed published power "
        f"characterization (found: {open_and_characterized})"
    )
    return result
