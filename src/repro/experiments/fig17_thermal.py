"""Figure 17: chip power versus package temperature by thread count.

The Section IV-J setup: heat sink removed, core at 100.01 MHz with
VDD=0.9V / VCS=0.95V, a different (unnamed) chip, ambient 20 C. The HP
application runs on 0..50 threads while the fan angle sweeps the
convective resistance, moving the package temperature; at each fixed
point, power settles to the leakage-temperature fixed point. Power
rises exponentially with temperature (leakage), offset upward by the
active threads' dynamic power.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import THERMAL_CHIP
from repro.system import PitonSystem
from repro.thermal.cooling import no_heatsink_at_angle
from repro.util.events import EventLedger
from repro.workloads.microbench import hp_thread_mapping, hp_tile

OPERATING = {"vdd": 0.90, "vcs": 0.95, "freq_hz": 100.01e6}
THREAD_COUNTS = (0, 10, 20, 30, 40, 50)
#: The paper sweeps temperature only within the stable band (36-56 C
#: package); beyond ~80 degrees of tilt the 30+-thread configurations
#: enter thermal runaway, so the sweep stops before it.
FAN_ANGLES = tuple(float(a) for a in range(0, 76, 15))

#: Figure 17's visible envelope for shape reference.
PAPER_RANGE = {
    "temp_c": (36.0, 56.0),
    "power_mw": (500.0, 900.0),
}


def _hp_ledger(system: PitonSystem, threads: int) -> tuple[EventLedger, int]:
    """Event rates for HP on ``threads`` threads (2 T/C mapping)."""
    if threads == 0:
        return EventLedger(), 1
    cores = max(1, threads // 2)
    tpc = 2 if threads >= 2 else 1
    mapping = hp_thread_mapping(list(range(cores)), tpc)
    workload = {c: hp_tile(mapping[c], c) for c in range(cores)}
    run = system.run_workload(
        workload, warmup_cycles=2_000, window_cycles=3_000
    )
    return run.ledger, run.window_cycles


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    thread_counts = THREAD_COUNTS[::2] if quick else THREAD_COUNTS
    angles = FAN_ANGLES[::2] if quick else FAN_ANGLES
    system = PitonSystem.default(
        persona=ctx.resolve_persona(THERMAL_CHIP),
        seed=29,
        tracer=ctx.trace,
        checks=ctx.checks,
    )
    system.set_operating_point(**OPERATING)
    power_model = ChipPowerModel(THERMAL_CHIP, system.calib)

    result = ExperimentResult(
        experiment_id="fig17",
        title="Chip power vs package temperature (no heat sink, "
        "100.01 MHz, VDD=0.9V), fan-angle sweep",
        headers=["Active threads"]
        + [f"angle {a:.0f}" for a in angles]
        + ["fit exp coeff (1/degC)"],
    )

    for threads in thread_counts:
        ledger, window = _hp_ledger(system, threads)
        temps, powers = [], []
        for angle in angles:
            cooling = no_heatsink_at_angle(angle)
            # Solve the leakage-temperature fixed point under this
            # cooling stack.
            die_temp = cooling.ambient_c
            for _ in range(100):
                op = OperatingPoint(
                    vdd=OPERATING["vdd"],
                    vcs=OPERATING["vcs"],
                    freq_hz=OPERATING["freq_hz"],
                    temp_c=die_temp,
                )
                power = power_model.idle_power(op)
                if threads:
                    power = power + power_model.event_power(
                        ledger, window, op
                    )
                new_temp = cooling.ambient_c + cooling.r_ja * power.total_w
                if abs(new_temp - die_temp) < 0.01:
                    break
                if new_temp > 150.0:
                    die_temp = 150.0  # thermal runaway; report capped
                    break
                die_temp += 0.5 * (new_temp - die_temp)
            # The FLIR camera reads the package surface, not the die.
            network = cooling.network()
            network.checker = system.checker
            network.settle(power.total_w)
            surface = network.temps[-1]
            temps.append(surface)
            powers.append(power.core_w * 1e3)
        # Exponential fit: ln P = a + b T.
        coeffs = np.polyfit(temps, np.log(powers), 1)
        result.rows.append(
            (
                threads,
                *(f"{p:.0f}mW@{t:.1f}C" for p, t in zip(powers, temps)),
                round(float(coeffs[0]), 4),
            )
        )
        result.series[f"{threads}_threads_temp_c"] = temps
        result.series[f"{threads}_threads_power_mw"] = powers

    result.paper_reference = dict(PAPER_RANGE)
    result.notes.append(
        "expected shape: power exponential in temperature at every "
        "thread count (leakage); curves shift up with active threads; "
        "envelope roughly 500-900 mW over 36-56 C"
    )
    return result
