"""Ablation: voltage/frequency scaling of workload energy.

The paper characterizes Fmax-vs-VDD (Figure 9) and idle power vs
voltage (Figure 10) but never combines them into the energy question a
DVFS governor asks: *at which (V, Fmax(V)) point does a fixed amount of
work cost the least energy?* This ablation runs the Int loop at each
Figure 9 operating point and reports power, runtime, and energy for a
fixed work quantum — exposing the classic race-to-idle-versus-
voltage-scaling trade-off on the reproduced chip, where high leakage
plus long runtimes punish very low voltages.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.vf_curve import VfCurve
from repro.silicon.variation import CHIP2
from repro.system import PitonSystem
from repro.workloads.microbench import int_tile

VDD_SWEEP = (0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10, 1.15)
WORK_INSTRUCTIONS = 1e9  # the fixed work quantum, per core


@experiment_runner
def run(ctx: RunContext, cores: int | None = None) -> ExperimentResult:
    quick = ctx.quick
    cores = cores if cores is not None else (4 if quick else 9)
    sweep = VDD_SWEEP[::2] if quick else VDD_SWEEP
    curve = VfCurve(CHIP2)

    result = ExperimentResult(
        experiment_id="ablation_dvfs",
        title=f"Energy for fixed work vs DVFS point (Int on {cores} "
        "cores, f = Fmax(VDD))",
        headers=[
            "VDD (V)",
            "f (MHz)",
            "Chip power (mW)",
            "Runtime (ms)",
            "Energy (mJ)",
        ],
    )
    result.series["energy_mj"] = []
    for vdd in sweep:
        point = curve.boot_frequency(vdd)
        system = PitonSystem.default(
            persona=ctx.resolve_persona(CHIP2),
            seed=43,
            tracer=ctx.trace,
            checks=ctx.checks,
        )
        system.set_operating_point(vdd, vdd + 0.05, point.fmax_hz)
        run_ = system.run_workload(
            {t: int_tile() for t in range(cores)},
            warmup_cycles=1_000,
            window_cycles=3_000,
        )
        power_w = run_.measurement.core.value
        ipc = run_.ipc / cores  # per-core
        runtime_s = WORK_INSTRUCTIONS / (ipc * point.fmax_hz)
        energy_j = power_w * runtime_s
        result.rows.append(
            (
                vdd,
                round(point.fmax_hz / 1e6, 1),
                round(power_w * 1e3, 1),
                round(runtime_s * 1e3, 2),
                round(energy_j * 1e3, 2),
            )
        )
        result.series["energy_mj"].append(energy_j * 1e3)

    energies = result.series["energy_mj"]
    best = sweep[energies.index(min(energies))]
    result.series["optimal_vdd"] = [best]
    result.notes.append(
        f"energy-optimal point: VDD = {best:.2f} V — below it, leakage "
        "integrated over the longer runtime wins; above it, CV^2 wins"
    )
    return result
