"""One module per table and figure of the paper's evaluation.

Every module exposes ``run(ctx: RunContext = ...) -> ExperimentResult``
(the removed legacy ``run(quick=..., jobs=...)`` keyword style now
raises a ``TypeError``). ``RunContext.quick`` trades sweep
density for runtime (used by the test suite — benchmarks run the full
shapes); ``jobs`` fans per-point simulations across worker processes
on experiments whose registry entry says ``supports_jobs``. The
registry maps experiment ids to runners plus chartability/parallelism
metadata so the CLI, the benchmark harness, and the examples can
enumerate them uniformly.
"""

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.registry import (
    EXPERIMENTS,
    ChartSpec,
    ExperimentSpec,
    get_experiment,
    get_spec,
)
from repro.experiments.result import ExperimentResult

__all__ = [
    "ChartSpec",
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "RunContext",
    "experiment_runner",
    "get_experiment",
    "get_spec",
]
