"""One module per table and figure of the paper's evaluation.

Every module exposes ``run(quick=False) -> ExperimentResult``; ``quick``
trades sweep density for runtime (used by the test suite — benchmarks
run the full shapes). The registry maps experiment ids to runners so
the benchmark harness and the examples can enumerate them.
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment"]
