"""Figure 10 (and Table V): static and idle power versus voltage.

For each (VDD, f) pair — f being the minimum of the three chips'
maximum frequencies at that VDD, as in the paper — measure static
power (clocks grounded) and idle power (clocks running), averaged
across the three chip personas, split into VDD (core) and VCS (SRAM)
static/dynamic contributions.
"""

from __future__ import annotations

from repro.arch.params import DEFAULT_MEASUREMENT
from repro.experiments.fig9_vf import VDD_SWEEP
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.vf_curve import VfCurve
from repro.silicon.variation import CHIP1, CHIP2, CHIP3
from repro.system import PitonSystem

PERSONAS = (CHIP1, CHIP2, CHIP3)

#: Table V anchors (chip #2 at the Table III defaults).
PAPER_TABLE5 = {"static_mw": 389.3, "idle_mw": 2015.3}


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    sweep = VDD_SWEEP[::2] if quick else VDD_SWEEP
    curves = {p.name: VfCurve(p) for p in PERSONAS}

    result = ExperimentResult(
        experiment_id="fig10",
        title="Static and idle power vs (VDD, f), 3-chip average, "
        "VDD/VCS split",
        headers=[
            "VDD (V)",
            "f (MHz)",
            "core static (mW)",
            "SRAM static (mW)",
            "core dynamic (mW)",
            "SRAM dynamic (mW)",
            "idle total (mW)",
        ],
    )
    for key in (
        "idle_total_mw",
        "static_total_mw",
        "core_static_mw",
        "sram_static_mw",
        "core_dynamic_mw",
        "sram_dynamic_mw",
    ):
        result.series[key] = []

    for vdd in sweep:
        vcs = vdd + 0.05
        freq_hz = (
            min(
                curves[p.name].boot_frequency(vdd).fmax_hz
                for p in PERSONAS
            )
        )
        stat_vdd = stat_vcs = dyn_vdd = dyn_vcs = 0.0
        for persona in PERSONAS:
            system = PitonSystem.default(
                persona=persona,
                seed=11,
                tracer=ctx.trace,
                checks=ctx.checks,
            )
            system.set_operating_point(vdd, vcs, freq_hz)
            static = system.measure_static()
            idle = system.measure_idle()
            stat_vdd += static.vdd.value / len(PERSONAS)
            stat_vcs += static.vcs.value / len(PERSONAS)
            dyn_vdd += (idle.vdd.value - static.vdd.value) / len(PERSONAS)
            dyn_vcs += (idle.vcs.value - static.vcs.value) / len(PERSONAS)
        idle_total = stat_vdd + stat_vcs + dyn_vdd + dyn_vcs
        result.rows.append(
            (
                vdd,
                round(freq_hz / 1e6, 2),
                round(stat_vdd * 1e3, 1),
                round(stat_vcs * 1e3, 1),
                round(dyn_vdd * 1e3, 1),
                round(dyn_vcs * 1e3, 1),
                round(idle_total * 1e3, 1),
            )
        )
        result.series["idle_total_mw"].append(idle_total * 1e3)
        result.series["static_total_mw"].append((stat_vdd + stat_vcs) * 1e3)
        result.series["core_static_mw"].append(stat_vdd * 1e3)
        result.series["sram_static_mw"].append(stat_vcs * 1e3)
        result.series["core_dynamic_mw"].append(dyn_vdd * 1e3)
        result.series["sram_dynamic_mw"].append(dyn_vcs * 1e3)

    # Table V: chip #2 at the Table III defaults.
    chip2 = PitonSystem.default(
        seed=11, tracer=ctx.trace, checks=ctx.checks
    )
    chip2.set_operating_point(
        DEFAULT_MEASUREMENT.vdd,
        DEFAULT_MEASUREMENT.vcs,
        DEFAULT_MEASUREMENT.core_clock_hz,
    )
    static = chip2.measure_static().core
    idle = chip2.measure_idle().core
    result.paper_reference = dict(PAPER_TABLE5)
    result.series["table5_static_mw"] = [static.value * 1e3]
    result.series["table5_idle_mw"] = [idle.value * 1e3]
    result.notes.append(
        f"Table V (chip #2): static {static.format(1e-3)} mW "
        f"(paper {PAPER_TABLE5['static_mw']}), idle {idle.format(1e-3)} mW "
        f"(paper {PAPER_TABLE5['idle_mw']})"
    )
    result.notes.append(
        "expected shape: exponential growth with voltage/frequency; "
        "SRAM dynamic power is a thin sliver of idle power"
    )
    return result
