"""Ablation: MITTS memory-bandwidth shaping between two tenants.

Piton ships MITTS "to facilitate memory bandwidth sharing in
multi-tenant systems" (Section II) but the paper never exercises it.
This ablation does: two tenants of DRAM-streaming cores share the
single 32-bit DDR3 channel; tenant B then gets a restrictive MITTS
inter-arrival configuration. Reported: each tenant's achieved memory
throughput and mean load latency, without and with shaping — showing
the shaper trading tenant B's bandwidth for tenant A's latency, which
is MITTS's purpose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.noc.mitts import MittsBin, MittsShaper
from repro.system import PitonSystem
from repro.workloads.memtests import build_memtest

TENANT_A = (0, 1)  # latency-sensitive tenant
TENANT_B = (2, 3)  # bandwidth hog to be shaped


def _restrictive_shaper() -> MittsShaper:
    """Admit roughly one request per 600 cycles on average."""
    return MittsShaper(
        [MittsBin(0, 0), MittsBin(300, 8), MittsBin(1200, 4)],
        epoch_cycles=6_000,
    )


@dataclass
class TenantStats:
    loads: float
    cycles: int

    @property
    def loads_per_kcycle(self) -> float:
        return 1e3 * self.loads / self.cycles


def _run_case(
    shaped: bool, window: int, checks: bool = False
) -> dict[str, TenantStats]:
    system = PitonSystem.default(seed=47, checks=checks)
    workload = {}
    for tile in TENANT_A + TENANT_B:
        # Every tenant core streams L2 misses (the Table VII miss loop).
        workload[tile] = build_memtest(
            "l2_miss_local", tile, system.config
        ).tile_program

    ledger_probe = system.new_engine()
    del ledger_probe  # documentation: engines are cheap to build

    # Build the engine manually so MITTS can be installed before warmup.
    from repro.util.events import EventLedger

    warm_ledger = EventLedger()
    engine = system.new_engine(warm_ledger)
    for tile, tp in workload.items():
        engine.add_core(tile, tp.programs, tp.init_regs, tp.init_fregs)
        engine.memory.load_image(tp.memory_image)
    if shaped:
        for tile in TENANT_B:
            engine.memsys.set_mitts(tile, _restrictive_shaper())
    engine.run(cycles=12_000)

    before = {
        tile: engine.cores[tile].threads[0].stats.loads
        for tile in workload
    }
    start = engine.now
    engine.run(cycles=window)
    elapsed = engine.now - start

    stats = {}
    for name, tiles in (("A", TENANT_A), ("B", TENANT_B)):
        loads = sum(
            engine.cores[t].threads[0].stats.loads - before[t]
            for t in tiles
        )
        stats[name] = TenantStats(loads=loads, cycles=elapsed)
    return stats


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    window = 30_000 if quick else 120_000
    result = ExperimentResult(
        experiment_id="ablation_mitts",
        title="MITTS bandwidth shaping between two DRAM-streaming "
        "tenants (tenant B shaped)",
        headers=[
            "Configuration",
            "Tenant A loads/kcycle",
            "Tenant B loads/kcycle",
            "A share of channel",
        ],
    )
    for shaped in (False, True):
        stats = _run_case(shaped, window, checks=ctx.checks)
        total = stats["A"].loads + stats["B"].loads
        share = stats["A"].loads / total if total else 0.0
        label = "B shaped by MITTS" if shaped else "unshaped"
        result.rows.append(
            (
                label,
                round(stats["A"].loads_per_kcycle, 3),
                round(stats["B"].loads_per_kcycle, 3),
                round(share, 3),
            )
        )
        result.series[f"{'shaped' if shaped else 'unshaped'}_a_share"] = [
            share
        ]
    unshaped = result.series["unshaped_a_share"][0]
    shaped = result.series["shaped_a_share"][0]
    result.notes.append(
        f"tenant A's channel share rises from {unshaped:.2f} to "
        f"{shaped:.2f} when tenant B is shaped — MITTS redistributing "
        "DRAM bandwidth without touching tenant A's configuration"
    )
    return result
