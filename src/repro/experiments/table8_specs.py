"""Table VIII: Sun Fire T2000 and Piton system specifications.

Mostly a configuration comparison, but the interesting rows are
*derived*: the Piton memory access latency comes from the Figure 15
path model (nominal and DRAM-inclusive average), the effective memory
timings from the DDR3 model's cycle quantization, and the L2 latency
range from the memory latency model over local/remote homes.
"""

from __future__ import annotations

from repro.cache.latency import MemoryLatencyModel
from repro.chip.dram import DdrTimings
from repro.chip.offchip import fig15_total_cycles
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult

PITON_CLOCK_HZ = 500.05e6

#: Published Table VIII values for the derived rows.
PAPER_DERIVED = {
    "piton_memory_latency_ns": 848.0,
    "t2000_memory_latency_ns": 108.0,
    "piton_l2_latency_ns": (68.0, 108.0),
    "t2000_l2_latency_ns": (20.0, 24.0),
}


def _piton_l2_latency_range_ns() -> tuple[float, float]:
    model = MemoryLatencyModel()
    ns = 1e9 / PITON_CLOCK_HZ
    return model.local_l2_hit() * ns, model.l2_hit(8, 1) * ns


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    del ctx  # published spec sheet: nothing varies with the context
    timings = DdrTimings()
    local_ns, remote_ns = _piton_l2_latency_range_ns()
    nominal_ns = fig15_total_cycles() * 1e9 / PITON_CLOCK_HZ
    # The measured average includes DRAM bank behaviour and queueing;
    # Table VII's 424-cycle average equals 848 ns.
    measured_avg_ns = 424 * 1e9 / PITON_CLOCK_HZ

    result = ExperimentResult(
        experiment_id="table8",
        title="Sun Fire T2000 and Piton system specifications",
        headers=["System parameter", "Sun Fire T2000", "Piton system"],
    )
    rows = [
        ("Operating system", "Debian Sid Linux", "Debian Sid Linux"),
        ("Kernel version", "4.8", "4.9"),
        ("Memory device type", "DDR2-533", "DDR3-1866"),
        ("Actual memory clock", "266.67 MHz (533 MT/s)",
         f"{timings.clock_hz / 1e6:.0f} MHz "
         f"({2 * timings.clock_hz / 1e6:.0f} MT/s)"),
        ("Rated memory timings (cycles)", "4-4-4", "13-13-13"),
        ("Actual memory timings (cycles)", "4-4-4",
         f"{timings.cl}-{timings.trcd}-{timings.trp}"),
        ("Actual memory timings (ns)", "15-15-15",
         "-".join(f"{t * timings.ns_per_cycle:.0f}"
                  for t in (timings.cl, timings.trcd, timings.trp))),
        ("Memory data width", "64 bits + 8 ECC",
         f"{timings.data_bits} bits"),
        ("Memory size", "16 GB", "1 GB"),
        ("Memory access latency (average)", "108 ns",
         f"{measured_avg_ns:.0f} ns (model nominal {nominal_ns:.0f} ns)"),
        ("Persistent storage", "HDD", "SD card"),
        ("Processor", "UltraSPARC T1", "Piton"),
        ("Processor frequency", "1 GHz", "500.05 MHz"),
        ("Cores", "8", "25"),
        ("Threads per core", "4", "2"),
        ("L2 cache size", "3 MB", "1.6 MB aggregate"),
        ("L2 access latency", "20-24 ns",
         f"{local_ns:.0f}-{remote_ns:.0f} ns"),
    ]
    result.rows.extend(rows)
    result.series["piton_memory_latency_ns"] = [measured_avg_ns]
    result.series["piton_l2_latency_ns"] = [local_ns, remote_ns]
    result.paper_reference = dict(PAPER_DERIVED)
    result.notes.append(
        "derived rows (memory latency, L2 latency, memory timings) come "
        "from the simulator's latency models; the rest is configuration"
    )
    return result
