"""Figure 12: NoC energy per flit versus hop count and switching
pattern.

Streams the chipset's dummy invalidation packets (flit-level mesh
simulation) at tiles 0 through 8 hops away for each of the four bit
patterns, measures chip power for each stream, and applies the paper's
EPF equation against the zero-hop baseline. Reports the per-hop
trendline slopes the figure's legend quotes.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.epf import energy_per_flit, pj_per_hop_trendline
from repro.silicon.variation import CHIP2
from repro.system import PitonSystem
from repro.workloads.noc_tests import (
    PATTERN_CYCLES,
    PATTERN_FLITS,
    PATTERNS,
    run_noc_stream,
)

#: Paper trendline slopes, pJ/hop (Figure 12 legend).
PAPER_SLOPES_PJ = {"NSW": 3.58, "HSW": 11.16, "FSW": 16.68, "FSWA": 16.98}


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    hops_sweep = list(range(0, 9, 2)) if quick else list(range(0, 9))
    packets = 40 if quick else 120
    system = PitonSystem.default(
        persona=ctx.resolve_persona(CHIP2),
        seed=9,
        tracer=ctx.trace,
        checks=ctx.checks,
    )

    result = ExperimentResult(
        experiment_id="fig12",
        title="NoC energy per flit vs hops (64-bit flits, one physical "
        "network, one direction)",
        headers=["Pattern"]
        + [f"{h} hops (pJ)" for h in hops_sweep]
        + ["slope (pJ/hop)", "paper slope"],
    )

    for pattern in PATTERNS:
        # Zero-hop baseline: same stream, destination tile 0.
        base = run_noc_stream(
            pattern, 0, packets, system.config, checker=system.checker
        )
        p_base = system.bench.measure_workload(
            base.ledger, base.cycles
        ).core

        epf_pj: list[float] = []
        for hops in hops_sweep:
            stream = run_noc_stream(
                pattern, hops, packets, system.config,
                checker=system.checker,
            )
            p_hop = system.bench.measure_workload(
                stream.ledger, stream.cycles
            ).core
            epf = energy_per_flit(
                p_hop,
                p_base,
                system.freq_hz,
                pattern_cycles=PATTERN_CYCLES,
                pattern_flits=PATTERN_FLITS,
            )
            epf_pj.append(epf.value / 1e-12)
        slope, _intercept = pj_per_hop_trendline(
            hops_sweep, [e * 1e-12 for e in epf_pj]
        )
        result.rows.append(
            (
                pattern,
                *(round(e, 1) for e in epf_pj),
                round(slope / 1e-12, 2),
                PAPER_SLOPES_PJ[pattern],
            )
        )
        result.series[pattern] = epf_pj
        result.series[f"{pattern}_slope_pj"] = [slope / 1e-12]

    result.paper_reference = dict(PAPER_SLOPES_PJ)
    result.notes.append(
        "expected shape: EPF linear in hops; energy ordered "
        "NSW < HSW < FSW ~ FSWA (wire switching dominates router "
        "overhead); sending a flit across the whole chip costs about "
        "one add instruction"
    )
    return result
