"""Common result container for experiment modules."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.obs.manifest import RunManifest
from repro.util.tables import render_table

#: Version of the ``to_dict``/``to_json`` document layout. Bump when a
#: key is renamed/removed or its meaning changes; additions are
#: backward compatible and do not require a bump.
RESULT_SCHEMA_VERSION = 1


@dataclass
class ExperimentResult:
    """Rows reproducing one paper table/figure, plus paper anchors.

    ``series`` optionally carries named numeric series (for figure-type
    results); ``paper_reference`` holds the corresponding published
    values where the paper states them, keyed the same way, so
    EXPERIMENTS.md and the regression tests can diff them.
    ``manifest`` records how the run was configured and where its wall
    time went (attached by the runner wrapper; see
    :mod:`repro.experiments.context`).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    paper_reference: Mapping[str, object] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    manifest: RunManifest | None = None

    def render(self) -> str:
        out = render_table(
            self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
        )
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def row_dict(self, key_column: int = 0) -> dict[object, Sequence[object]]:
        """Index rows by one column (for tests)."""
        return {row[key_column]: row for row in self.rows}

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        """Machine-readable document (the ``--json`` payload)."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "series": {k: list(v) for k, v in self.series.items()},
            "paper_reference": dict(self.paper_reference),
            "notes": list(self.notes),
            "manifest": (
                self.manifest.to_dict()
                if self.manifest is not None
                else None
            ),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        if "schema_version" not in data:
            raise ValueError(
                "result document has no schema_version field; not an "
                "ExperimentResult document (or one written before "
                "versioning — re-run the experiment to regenerate it)"
            )
        version = data["schema_version"]
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema_version {version!r}: this "
                f"build reads version {RESULT_SCHEMA_VERSION} only — "
                "regenerate the document with this build, or read it "
                "with the build that wrote it"
            )
        manifest_doc = data.get("manifest")
        return cls(
            experiment_id=data["experiment_id"],  # type: ignore[arg-type]
            title=data["title"],  # type: ignore[arg-type]
            headers=list(data.get("headers", ())),  # type: ignore[arg-type]
            rows=[tuple(row) for row in data.get("rows", ())],  # type: ignore[union-attr]
            series={
                k: list(v)
                for k, v in data.get("series", {}).items()  # type: ignore[union-attr]
            },
            paper_reference=dict(data.get("paper_reference", {})),  # type: ignore[arg-type]
            notes=list(data.get("notes", ())),  # type: ignore[arg-type]
            manifest=(
                RunManifest.from_dict(manifest_doc)  # type: ignore[arg-type]
                if manifest_doc is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))
