"""Common result container for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.util.tables import render_table


@dataclass
class ExperimentResult:
    """Rows reproducing one paper table/figure, plus paper anchors.

    ``series`` optionally carries named numeric series (for figure-type
    results); ``paper_reference`` holds the corresponding published
    values where the paper states them, keyed the same way, so
    EXPERIMENTS.md and the regression tests can diff them.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    paper_reference: Mapping[str, object] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = render_table(
            self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
        )
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def row_dict(self, key_column: int = 0) -> dict[object, Sequence[object]]:
        """Index rows by one column (for tests)."""
        return {row[key_column]: row for row in self.rows}
