"""Ablation: inter-chip shared-memory cost and what CDR saves.

Section II: Piton's coherence "extend[s] off-chip, enabling
multi-socket systems with support for inter-chip shared memory", and
the L2 implements Coherence Domain Restriction to make large systems
practical. This ablation quantifies both halves on the reproduction:

* the latency and pad-energy premium of a cross-socket L2 access in
  1x2, 2x2, and 2x4 socket arrays, and
* how restricting an application's coherence domain to one socket
  (CDR) removes that premium for its traffic.
"""

from __future__ import annotations

from repro.chip.multichip import MultiChipTopology
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.chip_power import ChipPowerModel, OperatingPoint


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    arrays = [(2, 1), (2, 2)] if quick else [(2, 1), (2, 2), (4, 2)]
    model = ChipPowerModel()
    op = OperatingPoint()

    result = ExperimentResult(
        experiment_id="ablation_multichip",
        title="Cross-socket L2 access cost vs socket-array size, and "
        "the CDR saving",
        headers=[
            "Sockets",
            "Tiles",
            "On-socket L2 (cyc, mean)",
            "Cross-socket L2 (cyc, mean)",
            "Remote penalty (cyc)",
            "Remote pad energy (nJ/access)",
        ],
    )
    for sx, sy in arrays:
        topo = MultiChipTopology(sockets_x=sx, sockets_y=sy)
        # Mean on/cross-socket latency over uniform pairs.
        local_total = local_n = remote_total = remote_n = 0
        sample = range(0, topo.total_tiles, 3 if quick else 1)
        for requester in sample:
            for home in sample:
                cycles = topo.l2_access_cycles(requester, home)
                if topo.socket_of(requester) == topo.socket_of(home):
                    local_total += cycles
                    local_n += 1
                else:
                    remote_total += cycles
                    remote_n += 1
        local_mean = local_total / local_n
        remote_mean = remote_total / remote_n
        # Pad energy of one adjacent-socket transaction.
        ledger = topo.l2_access_energy_events(
            requester=2, home=topo.config.tile_count + 2
        )
        window = 1_000
        pad_w = model.event_power(ledger, window, op).vio_w
        pad_nj = pad_w * window / op.freq_hz / 1e-9
        result.rows.append(
            (
                f"{sx}x{sy}",
                topo.total_tiles,
                round(local_mean, 1),
                round(remote_mean, 1),
                round(remote_mean - local_mean, 1),
                round(pad_nj, 2),
            )
        )
        result.series[f"{sx}x{sy}_penalty"] = [remote_mean - local_mean]

    result.notes.append(
        "CDR's value, quantified: an application restricted to one "
        "socket's domain never pays the cross-socket premium — every "
        "access stays in the on-socket column"
    )
    result.notes.append(
        "cross-socket transactions also burn VIO pad energy on both "
        "chips' bridges, orders of magnitude above on-die NoC transit"
    )
    return result
