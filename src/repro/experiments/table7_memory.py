"""Table VII: memory system energy for cache hit/miss scenarios.

Runs the set-aliasing ``ldx`` loops of Section IV-F on all cores and
applies the EPI methodology with the *measured* per-load interval (the
paper profiled L2-miss latency with performance counters because
"memory access latency varies" — under 25 concurrent missing cores
that interval includes DRAM channel queueing, which is what makes the
L2-miss energy two orders of magnitude above an L2 hit: the whole chip
sits stalled, burning power, while loads crawl through one 32-bit DDR3
channel).
"""

from __future__ import annotations

from repro.arch.floorplan import Floorplan
from repro.cache.latency import MemoryLatencyModel
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.epi import energy_per_instruction
from repro.silicon.variation import CHIP2
from repro.system import PitonSystem
from repro.workloads.memtests import SCENARIOS, build_memtest

#: Paper Table VII rows: scenario -> (nominal latency, energy nJ).
PAPER_TABLE7 = {
    "l1_hit": (3, 0.28646),
    "l2_hit_local": (34, 1.54),
    "l2_hit_remote_4": (42, 1.87),
    "l2_hit_remote_8": (52, 1.97),
    "l2_miss_local": (424, 308.7),
}

_LABELS = {
    "l1_hit": "L1 hit",
    "l2_hit_local": "L1 miss, local L2 hit",
    "l2_hit_remote_4": "L1 miss, remote L2 hit (4 hops)",
    "l2_hit_remote_8": "L1 miss, remote L2 hit (8 hops)",
    "l2_miss_local": "L1 miss, local L2 miss",
}


def _nominal_latency(scenario: str, hops: int) -> int:
    model = MemoryLatencyModel()
    if scenario == "l1_hit":
        return model.l1_hit
    if scenario.startswith("l2_hit"):
        turns = 1 if hops == 8 else 0
        return model.l2_hit(hops, turns)
    return 424  # measured average; the model value is derived below


@experiment_runner
def run(ctx: RunContext, cores: int | None = None) -> ExperimentResult:
    quick = ctx.quick
    cores = cores if cores is not None else (4 if quick else 25)
    window = 4_000 if quick else 12_000
    system = PitonSystem.default(
        persona=ctx.resolve_persona(CHIP2),
        seed=5,
        tracer=ctx.trace,
        checks=ctx.checks,
    )
    p_idle = system.measure_idle().core

    result = ExperimentResult(
        experiment_id="table7",
        title=f"Memory system energy ({cores} cores)",
        headers=[
            "Scenario",
            "Nominal latency (cycles)",
            "Measured interval (cycles)",
            "Mean LDX energy (nJ)",
            "Paper energy (nJ)",
        ],
    )
    floorplan = Floorplan(system.config)
    for scenario in SCENARIOS:
        need_hops = 8 if scenario.endswith("_8") else (
            4 if scenario.endswith("_4") else 0
        )
        participants = [
            t
            for t in range(cores)
            if floorplan.max_hops_from(t) >= need_hops
        ]
        tests = {
            tile: build_memtest(scenario, tile, system.config).tile_program
            for tile in participants
        }
        hops = build_memtest(
            scenario, participants[0], system.config
        ).hops
        scenario_cores = len(participants)
        # The miss scenario needs a longer window: each load takes
        # hundreds to thousands of cycles under contention.
        scenario_window = window * (12 if scenario == "l2_miss_local" else 1)
        # Warm-up must cover a full first pass through the 20-address
        # working set even when every first touch goes to DRAM *and*
        # all participating cores queue at the single DRAM channel
        # (~100 core cycles of channel service per line fetch).
        warmup = max(16_000, 130 * 20 * scenario_cores)
        run_ = system.run_workload(
            tests, warmup_cycles=warmup, window_cycles=scenario_window
        )
        # Loads completed inside the window, from the window ledger.
        window_loads = max(1.0, run_.ledger.count("l1d.read"))
        interval = run_.window_cycles * scenario_cores / window_loads
        energy = energy_per_instruction(
            run_.measurement.core,
            p_idle,
            system.freq_hz,
            latency_cycles=interval,
            cores=scenario_cores,
        )
        nominal = _nominal_latency(scenario, hops)
        result.rows.append(
            (
                _LABELS[scenario],
                nominal,
                round(interval, 1),
                round(energy.value / 1e-9, 3),
                PAPER_TABLE7[scenario][1],
            )
        )
        result.series[scenario] = [energy.value / 1e-9, interval]

    result.paper_reference = {
        key: {"latency": lat, "energy_nj": nj}
        for key, (lat, nj) in PAPER_TABLE7.items()
    }
    result.notes.append(
        "expected shape: local-vs-remote L2 difference is small (NoC "
        "energy is cheap); an L2 miss costs two orders of magnitude "
        "more than an L2 hit because the chip stalls on DRAM"
    )
    return result
