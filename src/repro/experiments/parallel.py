"""Fan independent simulation points across a process pool.

The experiments in this package are grids of independent measurement
points (VDD values, core counts, thread counts, instruction classes).
Each point's *simulation* is a pure function of a
:class:`~repro.system.SimRequest` — the simulator has no randomness —
while each point's *measurement* consumes the bench's monitor-noise RNG
stream and mutates thermal state, so measurement order is
load-bearing.

The split this module implements therefore guarantees bit-identical
results to a serial run by construction:

1. build every point's ``SimRequest`` in the experiment's original
   iteration order;
2. fan the requests out with :func:`parallel_simulate` (results come
   back in submission order, whatever order workers finish in);
3. replay the measurements serially, in the parent process, in the
   original order, via :meth:`PitonSystem.measure_outcome`.

With ``jobs <= 1`` everything runs in-process (and the simulation
engines stay attached to the outcomes); with ``jobs > 1`` a
``multiprocessing`` pool runs the simulations and the engines are
stripped before crossing the process boundary.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.obs.trace import Tracer
from repro.system import SimOutcome, SimRequest, run_simulation

T = TypeVar("T")
R = TypeVar("R")


def _simulate_stripped(request: SimRequest) -> SimOutcome:
    """Pool worker: simulate, then drop the engine (it does not need to
    be pickled back; callers of the parallel path read only the ledger
    and counters)."""
    outcome = run_simulation(request)
    outcome.engine = None
    return outcome


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: int = 1
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results always come back in submission order (``Pool.map``
    preserves it). ``fn`` must be a module-level function and ``items``
    picklable when ``jobs > 1``.
    """
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with multiprocessing.Pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items)


def parallel_simulate(
    requests: Iterable[SimRequest],
    jobs: int = 1,
    tracer: Tracer | None = None,
) -> Iterator[SimOutcome]:
    """Run every request, yielding outcomes in request order.

    With ``jobs <= 1`` this is fully lazy: each request is built (when
    ``requests`` is a generator) and simulated only when its outcome is
    consumed, so a serial experiment interleaves simulation with its
    measurement replay and never holds the whole grid in memory — the
    exact behavior of the pre-parallel code. With ``jobs > 1`` the
    requests are materialized and fanned across a process pool
    (``Pool.map`` preserves submission order).

    Engines are stripped on both paths: grid experiments read only
    ledgers and counters.

    An enabled ``tracer`` receives each point's build/simulate wall
    times (stamped on the outcome by :func:`~repro.system.run_simulation`,
    so they survive the pickle back from pool workers) as outcomes are
    consumed, in submission order. Telemetry reads finished outcomes
    only — it cannot perturb simulation results.
    """
    if jobs <= 1:
        outcomes: Iterator[SimOutcome] = map(_simulate_stripped, requests)
    else:
        materialized = list(requests)
        if len(materialized) <= 1:
            outcomes = map(_simulate_stripped, materialized)
        else:
            outcomes = iter(
                parallel_map(_simulate_stripped, materialized, jobs=jobs)
            )
    if tracer is None or not tracer.enabled:
        return outcomes
    return _record_points(outcomes, tracer)


def _record_points(
    outcomes: Iterable[SimOutcome], tracer: Tracer
) -> Iterator[SimOutcome]:
    """Fold per-point wall times into the parent tracer on the fly."""
    for outcome in outcomes:
        tracer.add_span("build", outcome.build_wall_s)
        tracer.add_span("simulate", outcome.sim_wall_s)
        tracer.point(outcome.sim_wall_s)
        yield outcome
