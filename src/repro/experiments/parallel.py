"""Fan independent simulation points across a supervised worker pool.

The experiments in this package are grids of independent measurement
points (VDD values, core counts, thread counts, instruction classes).
Each point's *simulation* is a pure function of a
:class:`~repro.system.SimRequest` — the simulator has no randomness —
while each point's *measurement* consumes the bench's monitor-noise RNG
stream and mutates thermal state, so measurement order is
load-bearing.

The split this module implements therefore guarantees bit-identical
results to a serial run by construction:

1. build every point's ``SimRequest`` in the experiment's original
   iteration order;
2. fan the requests out with :func:`parallel_simulate` (results come
   back in submission order, whatever order workers finish in);
3. replay the measurements serially, in the parent process, in the
   original order, via :meth:`PitonSystem.measure_outcome`.

With ``jobs <= 1`` everything runs in-process (and the simulation
engines stay attached to the outcomes); with ``jobs > 1`` the
simulations run on a :class:`~repro.resilience.SupervisedPool`, which
detects crashed and hung workers, retries their points with backoff,
and keeps one poisoned point from killing the grid. Passing a
:class:`~repro.resilience.Supervision` adds checkpoint journaling: each
completed outcome is appended to a CRC-checked journal the moment it
exists, and a resumed run loads journaled points instead of
re-simulating them — the measurement replay still walks the full grid
in order, so resumed results are bit-identical to uninterrupted ones.
"""

from __future__ import annotations

import multiprocessing
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    Sequence,
    TypeVar,
)

from repro.batch import batched_simulate, plan_batches
from repro.batch.execute import _simulate_stripped
from repro.obs.trace import Tracer
from repro.resilience import Supervision, SupervisedPool, request_digest
from repro.system import SimOutcome, SimRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.surrogate.dispatch import FidelityPolicy

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: int = 1
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results always come back in submission order (``Pool.map``
    preserves it). ``fn`` must be a module-level function and ``items``
    picklable when ``jobs > 1``.

    A completed ``map`` drains the pool gracefully (``close()`` +
    ``join()``): idle workers exit on their own instead of eating a
    ``SIGTERM``, which matters because CLI runs install signal
    handlers that forked workers inherit — terminating a healthy pool
    would make every worker die raising ``GridInterrupted`` to
    stderr. A ``map`` that *raises* is torn down with an explicit
    ``terminate()`` + ``join()``: relying on ``Pool.__exit__`` alone
    leaks worker processes when a ``KeyboardInterrupt`` lands
    mid-``map`` (the interrupted main thread can abandon the pool's
    internal machinery before ``__exit__``'s cleanup runs to
    completion).
    """
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool = multiprocessing.Pool(min(jobs, len(items)))
    try:
        results = pool.map(fn, items)
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    pool.close()
    pool.join()
    return results


def parallel_simulate(
    requests: Iterable[SimRequest],
    jobs: int = 1,
    tracer: Tracer | None = None,
    supervision: Supervision | None = None,
    batch: bool = False,
    fidelity: "FidelityPolicy | None" = None,
) -> Iterator[SimOutcome]:
    """Run every request, yielding outcomes in request order.

    With ``jobs <= 1`` this is fully lazy: each request is built (when
    ``requests`` is a generator) and simulated only when its outcome is
    consumed, so a serial experiment interleaves simulation with its
    measurement replay and never holds the whole grid in memory — the
    exact behavior of the pre-parallel code. With ``jobs > 1`` the
    requests are materialized and fanned across a
    :class:`~repro.resilience.SupervisedPool` (results are collected
    in submission order, whatever order workers finish in).

    ``supervision`` configures failure handling: its
    :class:`~repro.resilience.RetryPolicy` bounds retries and
    deadlines, its journal (if any) checkpoints each completed outcome
    and serves journaled points back on resume, and its tracer records
    the retry/timeout/resume counters. With ``supervision=None`` the
    pool runs under the default policy and nothing is journaled; the
    serial path is then byte-for-byte the historical one (zero cost
    when idle).

    Engines are stripped on both paths: grid experiments read only
    ledgers and counters.

    An enabled ``tracer`` receives each point's build/simulate wall
    times (stamped on the outcome by :func:`~repro.system.run_simulation`,
    so they survive the pickle back from pool workers) as outcomes are
    consumed, in submission order. Telemetry reads finished outcomes
    only — it cannot perturb simulation results.

    ``batch=True`` coalesces grid points that share a timing class
    (see :mod:`repro.batch`) into one simulation each: the
    representative request runs once and its outcome is replicated to
    every member, bit-identically — the simulator is a pure function
    of the request, and the batch key covers everything it reads.
    Batching materializes the request stream up front (the plan needs
    the whole grid); when nothing coalesces, execution falls straight
    through to the historical paths below at zero extra cost beyond
    the planning pass.

    ``fidelity`` routes points through the two-tier dispatcher
    (:mod:`repro.surrogate`): points a calibrated profile can serve
    within tolerance come back as ``tier="fast"`` outcomes without a
    simulation; everything else — novel workloads, out-of-envelope
    clocks, checked runs — falls back to the simulator, with
    ``surrogate_hits``/``surrogate_fallbacks`` counted on the policy's
    tracer. ``fidelity=None`` (the default, and all of ``--tier sim``)
    is byte-for-byte the historical cycle-level behavior, except that
    journaled *surrogate* points from an earlier ``auto``/``fast`` run
    are re-simulated rather than silently reused.
    """
    journal = supervision.journal if supervision is not None else None
    if batch:
        materialized = list(requests)
        plan = plan_batches(materialized)
        stats_tracer = tracer
        if stats_tracer is None and supervision is not None:
            stats_tracer = supervision.tracer
        if stats_tracer is not None and stats_tracer.enabled:
            stats_tracer.note("batch", plan.summary())
            stats_tracer.count("batch_groups", plan.n_groups)
            stats_tracer.count(
                "batch_points_coalesced", plan.points_coalesced
            )
            if plan.debatch_events:
                stats_tracer.count(
                    "batch_debatch_events", plan.debatch_events
                )
        if plan.points_coalesced > 0:
            outcomes = batched_simulate(
                materialized,
                plan,
                jobs=jobs,
                supervision=supervision,
                fidelity=fidelity,
            )
            if tracer is None or not tracer.enabled:
                return outcomes
            return _record_points(outcomes, tracer)
        requests = materialized
    if fidelity is not None:
        simulate_one: Callable[[SimRequest], SimOutcome] = (
            lambda request: fidelity.predict(request)
            or _simulate_stripped(request)
        )
    else:
        simulate_one = _simulate_stripped
    if jobs <= 1 and journal is None:
        # The historical zero-cost serial path: fully lazy, nothing
        # supervised (an in-process failure is deterministic — a
        # retry would fail identically).
        outcomes: Iterator[SimOutcome] = map(simulate_one, requests)
    else:
        materialized = list(requests)
        if len(materialized) <= 1 and journal is None:
            outcomes = map(simulate_one, materialized)
        else:
            outcomes = _run_supervised(
                materialized, jobs, supervision, fidelity
            )
    if tracer is None or not tracer.enabled:
        return outcomes
    return _record_points(outcomes, tracer)


def _run_supervised(
    requests: Sequence[SimRequest],
    jobs: int,
    supervision: Supervision | None,
    fidelity: "FidelityPolicy | None" = None,
) -> Iterator[SimOutcome]:
    """Run a materialized grid under supervision (and/or a journal).

    Journaled points (on resume) never reach the pool; the rest run
    supervised — across workers for ``jobs > 1``, in-process for a
    serial journaled run — each appended to the journal the moment it
    completes, so an interrupt at any point loses only in-flight work.

    Tier-awareness composes at the same per-point seam: a journaled
    outcome must satisfy the active fidelity policy to be reused (a
    surrogate point is re-simulated when cycle-level fidelity is
    requested, counted as ``points_tier_rejected``), and points the
    surrogate serves are journaled exactly like simulated ones.

    The journal is retired once the consumer has received the final
    outcome (tracked in the ``finally``: the generator knows the last
    index it yielded even when the consumer stops calling ``next``
    afterwards). A consumer that abandons the grid mid-way — an
    interrupt unwinding through the measurement replay — leaves every
    completed point on disk for ``--resume``.
    """
    from repro.surrogate.dispatch import accepts_cached_outcome

    supervision = supervision if supervision is not None else Supervision()
    journal = supervision.journal
    count = supervision.tracer.count
    digests = [request_digest(request) for request in requests]
    outcomes: dict[int, SimOutcome] = {}
    todo: list[int] = []
    for index, digest in enumerate(digests):
        cached = journal.get(index, digest) if journal is not None else None
        if cached is not None and not accepts_cached_outcome(
            cached, fidelity
        ):
            count("points_tier_rejected")
            cached = None
        if cached is not None:
            outcomes[index] = cached
            count("points_resumed")
            continue
        predicted = (
            fidelity.predict(requests[index])
            if fidelity is not None
            else None
        )
        if predicted is not None:
            outcomes[index] = predicted
            if journal is not None:
                journal.append(index, digest, predicted)
            continue
        todo.append(index)
    if journal is not None:
        journal.write_meta(
            experiment_id=supervision.experiment_id,
            points_expected=len(requests),
        )

    def on_result(todo_index: int, outcome: SimOutcome) -> None:
        index = todo[todo_index]
        outcomes[index] = outcome
        if journal is not None:
            journal.append(index, digests[index], outcome)

    pool = SupervisedPool(
        _simulate_stripped,
        jobs=jobs,
        policy=supervision.policy,
        tracer=supervision.tracer,
    )
    pool.map([requests[i] for i in todo], on_result=on_result)

    def emit() -> Iterator[SimOutcome]:
        index = -1
        try:
            for index in range(len(requests)):
                yield outcomes[index]
        finally:
            # Runs on exhaustion *and* when the consumer drops the
            # iterator; the journal is done only if the final point
            # was delivered.
            if journal is not None and index == len(requests) - 1:
                journal.complete()

    return emit()


def _record_points(
    outcomes: Iterable[SimOutcome], tracer: Tracer
) -> Iterator[SimOutcome]:
    """Fold per-point wall times into the parent tracer on the fly."""
    for outcome in outcomes:
        tracer.add_span("build", outcome.build_wall_s)
        tracer.add_span("simulate", outcome.sim_wall_s)
        tracer.point(outcome.sim_wall_s)
        yield outcome
