"""Figure 14: multithreading versus multicore power and energy.

For equal thread counts, compare 1 T/C on N cores (multicore) against
2 T/C on N/2 cores (multithreading) for the three microbenchmarks,
splitting power and energy into *active* and *active-cores-idle*
portions exactly as the paper does: the idle share charged to a
configuration is the full-chip idle power scaled by its active core
fraction — multicore is charged double the idle power of
multithreading.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.parallel import parallel_simulate
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.silicon.variation import CHIP3
from repro.sweepspec import grid_product
from repro.system import PitonSystem
from repro.workloads.base import TileProgram
from repro.workloads.microbench import (
    PATTERN_A,
    PATTERN_B,
    hist_workload,
    hp_thread_mapping,
    hp_tile,
    int_program,
    microbench_core_ids,
)

BENCHMARKS = ("Int", "HP", "Hist")

#: Iterations per thread for the finite (energy) runs.
ITERATIONS = 400
HIST_TOTAL_ELEMENTS = 1024


@dataclass(frozen=True)
class MtMcPoint:
    benchmark: str
    thread_count: int
    config: str  # "1 T/C" or "2 T/C"
    active_cores: int
    total_power_w: float
    active_power_w: float
    idle_share_w: float
    exec_cycles: int
    active_energy_j: float
    idle_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.active_energy_j + self.idle_energy_j


def _finite_workload(
    bench: str, cores: list[int], tpc: int
) -> dict[int, TileProgram]:
    if bench == "Int":
        return {
            c: TileProgram(
                programs=[int_program(ITERATIONS)] * tpc,
                init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1},
            )
            for c in cores
        }
    if bench == "HP":
        mapping = hp_thread_mapping(cores, tpc)
        return {
            c: hp_tile(mapping[c], c, iterations=ITERATIONS) for c in cores
        }
    if bench == "Hist":
        return hist_workload(
            cores,
            tpc,
            total_elements=HIST_TOTAL_ELEMENTS,
            repeat_forever=False,
            iterations=1,
        ).tiles
    raise ValueError(f"unknown benchmark {bench!r}")


def _point_request(
    system: PitonSystem, bench: str, threads: int, tpc: int
):
    cores = microbench_core_ids(threads // tpc)
    return system.sim_request_to_completion(
        _finite_workload(bench, cores, tpc)
    )


def _measure_point(
    system: PitonSystem,
    idle_total_w: float,
    outcome,
    bench: str,
    threads: int,
    tpc: int,
) -> MtMcPoint:
    active_cores = threads // tpc
    run = system.measure_outcome(outcome)

    total_w = run.measurement.core.value
    idle_share = idle_total_w * active_cores / system.config.tile_count
    active_w = total_w - idle_total_w  # activity above full-chip idle
    exec_s = run.result.cycles / system.freq_hz
    return MtMcPoint(
        benchmark=bench,
        thread_count=threads,
        config=f"{tpc} T/C",
        active_cores=active_cores,
        total_power_w=active_w + idle_share,
        active_power_w=active_w,
        idle_share_w=idle_share,
        exec_cycles=run.result.cycles,
        active_energy_j=active_w * exec_s,
        idle_energy_j=idle_share * exec_s,
    )


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    thread_counts = [4, 8, 16, 24] if quick else list(range(2, 25, 2))
    system = PitonSystem.default(
        persona=ctx.resolve_persona(CHIP3),
        seed=17,
        tracer=ctx.trace,
        checks=ctx.checks,
    )

    # The (bench, threads, tpc) grid in original iteration order; the
    # finite simulations fan out, measurements replay serially below.
    grid = [
        (cell["bench"], cell["threads"], cell["tpc"])
        for cell in grid_product(
            where=lambda c: not (
                c["threads"] % c["tpc"]
                or c["threads"] // c["tpc"] > 25
            ),
            bench=BENCHMARKS,
            threads=thread_counts,
            tpc=(1, 2),
        )
    ]
    requests = (
        _point_request(system, bench, threads, tpc)
        for bench, threads, tpc in grid
    )
    outcomes = parallel_simulate(
        requests,
        jobs=ctx.jobs,
        tracer=ctx.trace,
        supervision=ctx.supervision("fig14"),
        batch=ctx.batch,
        fidelity=ctx.fidelity_policy(),
    )

    idle_total_w = system.measure_idle().core.value

    result = ExperimentResult(
        experiment_id="fig14",
        title="Multithreading (2 T/C) vs multicore (1 T/C) at equal "
        "thread counts (chip #3)",
        headers=[
            "Benchmark",
            "Threads",
            "Config",
            "Active cores",
            "Power (mW)",
            "Active power (mW)",
            "Idle share (mW)",
            "Exec (kcycles)",
            "Energy (uJ)",
        ],
    )
    points: list[MtMcPoint] = []
    for bench, threads, tpc in grid:
        point = _measure_point(
            system, idle_total_w, next(outcomes), bench, threads, tpc
        )
        points.append(point)
        result.rows.append(
            (
                bench,
                threads,
                point.config,
                point.active_cores,
                round(point.total_power_w * 1e3, 1),
                round(point.active_power_w * 1e3, 1),
                round(point.idle_share_w * 1e3, 1),
                round(point.exec_cycles / 1e3, 1),
                round(point.total_energy_j * 1e6, 2),
            )
        )
        key = f"{bench}_{point.config.replace(' ', '')}"
        result.series.setdefault(f"{key}_power_w", []).append(
            point.total_power_w
        )
        result.series.setdefault(f"{key}_energy_j", []).append(
            point.total_energy_j
        )

    # Headline comparisons the paper draws.
    notes = _shape_notes(points)
    result.notes.extend(notes)
    result.paper_reference = {
        "int_mt_more_energy": True,
        "hp_mt_more_energy": True,
        "hist_mt_more_efficient": True,
        "mt_lower_power": True,
    }
    return result


def _shape_notes(points: list[MtMcPoint]) -> list[str]:
    notes = []
    for bench in BENCHMARKS:
        mc = {
            p.thread_count: p
            for p in points
            if p.benchmark == bench and p.config == "1 T/C"
        }
        mt = {
            p.thread_count: p
            for p in points
            if p.benchmark == bench and p.config == "2 T/C"
        }
        common = sorted(set(mc) & set(mt))
        if not common:
            continue
        energy_ratio = sum(
            mt[t].total_energy_j / mc[t].total_energy_j for t in common
        ) / len(common)
        power_ratio = sum(
            mt[t].total_power_w / mc[t].total_power_w for t in common
        ) / len(common)
        notes.append(
            f"{bench}: MT/MC mean energy ratio {energy_ratio:.2f}, "
            f"mean power ratio {power_ratio:.2f} "
            f"(paper: MT uses less power; MT uses more energy for "
            f"Int/HP, less for Hist)"
        )
    return notes
