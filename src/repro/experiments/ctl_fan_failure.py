"""Fan failure and recovery under the hysteretic thermal governor.

The paper's "camera" demo runs Piton passively cooled at 0.65 V; this
scenario stresses that regime with a mid-run cooling fault: the
outermost thermal stage's resistance doubles (fan stops) and later
recovers. The governed arm sheds rungs as the die crosses the trip
point and climbs back after recovery — and must do it without
chattering (dwell >= one die time constant, audited by ``gov_dwell``).
The static arm documents the overtemperature excursion a fixed
operating point suffers.
"""

from __future__ import annotations

from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.ctl_common import decimate, persona_name, run_specs
from repro.experiments.result import ExperimentResult
from repro.governor.scenarios import ScenarioSpec

#: Passive-cooling ladder: the paper's camera point (0.65 V) upward.
VDD_GRID = (0.65, 0.70, 0.75, 0.80)
ACTIVITY_W = 0.2
TRIP_C = 65.0
CLEAR_C = 54.0
FAN_FAIL_S = 60.0
FAN_RECOVER_S = 240.0
FAN_R_FACTOR = 2.0


def _specs(persona: str, duration_s: float) -> list[ScenarioSpec]:
    common = dict(
        persona=persona,
        cooling="camera",
        vdd_grid=VDD_GRID,
        duration_s=duration_s,
        phases=((0.0, ACTIVITY_W),),
        fan_fail_s=FAN_FAIL_S,
        fan_recover_s=FAN_RECOVER_S,
        fan_r_factor=FAN_R_FACTOR,
    )
    return [
        ScenarioSpec(name="static", policy="static", **common),
        ScenarioSpec(
            name="governed",
            policy="thermal_trip",
            trip_c=TRIP_C,
            clear_c=CLEAR_C,
            **common,
        ),
    ]


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    duration = 600.0 if ctx.quick else 900.0
    specs = _specs(persona_name(ctx, "thermal"), duration)
    traces = run_specs(ctx, specs)

    result = ExperimentResult(
        experiment_id="ctl_fan_failure",
        title="Fan failure/recovery on the passive camera setup "
        f"(R_hs x{FAN_R_FACTOR:g} at t={FAN_FAIL_S:g} s, recovered "
        f"at t={FAN_RECOVER_S:g} s)",
        headers=[
            "Policy",
            "Peak die temp (C)",
            "Min level",
            "End level",
            "Actuations",
            "Mean freq (MHz)",
            "Energy (J)",
        ],
    )
    for spec, trace in zip(specs, traces):
        levels = [s.level for s in trace.samples]
        result.rows.append(
            (
                spec.name,
                round(trace.peak_temp_c(), 1),
                min(levels),
                levels[-1],
                trace.gov_actuations,
                round(trace.mean_freq_hz() / 1e6, 1),
                round(trace.energy_j, 1),
            )
        )
        result.series[f"{spec.name}_temp_c"] = decimate(
            [s.die_temp_c for s in trace.samples]
        )
        result.series[f"{spec.name}_level"] = decimate(
            [float(s.level) for s in trace.samples]
        )
    result.notes.append(
        "the slow thermal mode here is C_total*R_hs (~8 min once the "
        "fan dies), so the governor's response is paced by physics, "
        "not the 17 Hz loop; hysteresis plus the dwell floor keep it "
        "to a handful of clean actuations instead of limit cycling on "
        "the trip point"
    )
    return result
