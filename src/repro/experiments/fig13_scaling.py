"""Figure 13: power scaling with core count.

Runs Int, HP, and Hist on 1..25 cores in both one- and two-threads-per-
core configurations (the paper's HP thread-mapping rules included),
measures full-chip power for each point, and fits the per-core
trendline slopes the figure's legend quotes.
"""

from __future__ import annotations

from repro.experiments.parallel import parallel_simulate
from repro.experiments.context import RunContext, experiment_runner
from repro.experiments.result import ExperimentResult
from repro.power.epf import pj_per_hop_trendline
from repro.silicon.variation import CHIP3
from repro.sweepspec import grid_product
from repro.system import PitonSystem
from repro.workloads.base import TileProgram
from repro.workloads.microbench import (
    hist_workload,
    hp_thread_mapping,
    hp_tile,
    int_program,
    int_tile,
    microbench_core_ids,
    PATTERN_A,
    PATTERN_B,
)

#: Paper trendline slopes, mW/core (Figure 13 legend).
PAPER_SLOPES_MW = {
    ("Int", 1): 22.8,
    ("Int", 2): 37.4,
    ("HP", 1): 35.6,
    ("HP", 2): 57.8,
    ("Hist", 1): 14.5,
    ("Hist", 2): 14.4,
}

BENCHMARKS = ("Int", "HP", "Hist")


def build_workload(
    bench: str, core_count: int, threads_per_core: int
) -> dict[int, TileProgram]:
    """Assemble one Figure 13/14 measurement point's workload."""
    cores = microbench_core_ids(core_count)
    if bench == "Int":
        tile = int_tile()
        if threads_per_core == 2:
            tile = TileProgram(
                programs=[int_program(), int_program()],
                init_regs={8: PATTERN_A, 9: PATTERN_B, 31: 1},
            )
        return {c: tile for c in cores}
    if bench == "HP":
        mapping = hp_thread_mapping(cores, threads_per_core)
        return {c: hp_tile(mapping[c], c) for c in cores}
    if bench == "Hist":
        return hist_workload(cores, threads_per_core).tiles
    raise ValueError(f"unknown microbenchmark {bench!r}")


@experiment_runner
def run(ctx: RunContext) -> ExperimentResult:
    quick = ctx.quick
    core_counts = [1, 5, 9, 13, 17, 21, 25] if quick else list(
        range(1, 26, 2)
    )
    window = 3_000 if quick else 6_000
    warmup = 2_000 if quick else 4_000
    system = PitonSystem.default(
        persona=ctx.resolve_persona(CHIP3),
        seed=13,
        tracer=ctx.trace,
        checks=ctx.checks,
    )

    # Simulations fan out across workers; measurements replay serially
    # in grid order, so the result is identical for any ``jobs``. The
    # request stream is a generator: the serial path builds and
    # simulates each point only as its measurement comes due.
    requests = (
        system.sim_request(
            build_workload(
                cell["bench"], cell["count"], cell["tpc"]
            ),
            warmup_cycles=warmup,
            window_cycles=window,
        )
        for cell in grid_product(
            bench=BENCHMARKS, tpc=(1, 2), count=core_counts
        )
    )
    outcomes = parallel_simulate(
        requests,
        jobs=ctx.jobs,
        tracer=ctx.trace,
        supervision=ctx.supervision("fig13"),
        batch=ctx.batch,
        fidelity=ctx.fidelity_policy(),
    )

    result = ExperimentResult(
        experiment_id="fig13",
        title="Full-chip power vs core count (chip #3)",
        headers=["Benchmark", "T/C"]
        + [f"{n} cores (mW)" for n in core_counts]
        + ["slope (mW/core)", "paper slope"],
    )
    for bench in BENCHMARKS:
        for tpc in (1, 2):
            powers_mw = []
            for count in core_counts:
                run_ = system.measure_outcome(next(outcomes))
                powers_mw.append(run_.measurement.core.value * 1e3)
            slope_w, _ = pj_per_hop_trendline(
                core_counts, [p * 1e-3 for p in powers_mw]
            )
            result.rows.append(
                (
                    bench,
                    f"{tpc} T/C",
                    *(round(p) for p in powers_mw),
                    round(slope_w * 1e3, 1),
                    PAPER_SLOPES_MW[(bench, tpc)],
                )
            )
            result.series[f"{bench}_{tpc}tc"] = powers_mw
            result.series[f"{bench}_{tpc}tc_slope_mw"] = [slope_w * 1e3]

    result.paper_reference = {
        f"{b}_{t}tc_slope_mw": v for (b, t), v in PAPER_SLOPES_MW.items()
    }
    result.notes.append(
        "expected shape: linear growth; 2 T/C steeper than 1 T/C for "
        "Int and HP but not Hist; ordering Hist < Int < HP; Hist 2 T/C "
        "power flattens or drops at high core counts (lock contention)"
    )
    return result
