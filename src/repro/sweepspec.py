"""Composable sweep requests: one grid-construction path for everyone.

Grid generation used to be baked into each consumer — the fig11/13/14
runners enumerated their own point tuples, ``repro sweep`` rebuilt its
V/f axes from CLI flags, and nothing could describe a sweep *as data*.
This module is the lift:

* :func:`grid_product` / :func:`expand_grid` are the ordered grid
  enumerators the figure runners now share (order is load-bearing:
  measurements replay serially in grid order, and the golden snapshots
  pin the historical iteration order bit-for-bit);
* :class:`SweepSpec` is a JSON-round-trippable description of a dense
  (workload × persona × VDD × frequency) sweep — the request body the
  ``repro serve`` daemon accepts, the ``--spec FILE`` document
  ``repro sweep`` loads, and the object the CLI flags build;
* :func:`build_requests` (in :mod:`repro.experiments.sweep`) turns the
  spec's points into ordered :class:`~repro.system.SimRequest`\\ s with
  stable sha256 digests — the identity the checkpoint journal and the
  service's content-addressed result cache both key on.

Validation failures raise :class:`SpecError` with the offending field
named and the fix spelled out, mirroring the
``ExperimentResult.from_dict`` schema guard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.sweep import SweepPoint
    from repro.system import SimRequest

SWEEPSPEC_SCHEMA_VERSION = 1

T = TypeVar("T")
U = TypeVar("U")


class SpecError(ValueError):
    """A SweepSpec document failed validation: which field, and why."""

    def __init__(self, spec_field: str, problem: str, hint: str | None = None):
        self.spec_field = spec_field
        self.problem = problem
        self.hint = hint
        message = f"invalid SweepSpec field {spec_field!r}: {problem}"
        if hint:
            message += f" — {hint}"
        super().__init__(message)


# --------------------------------------------------------------- grid helpers
def grid_product(
    where: Callable[[Mapping[str, object]], bool] | None = None,
    **axes: Sequence[object],
) -> list[dict[str, object]]:
    """Ordered cartesian product of named axes (last axis fastest).

    The enumeration order matches the nested-loop order the figure
    runners historically used (``for a in A: for b in B: ...`` with
    axes given in that nesting order), so lifting a runner's inline
    loops onto this helper is bit-identical. ``where`` filters points
    *after* enumeration, preserving the order of the survivors.
    """
    points: list[dict[str, object]] = [{}]
    for name, values in axes.items():
        points = [
            {**point, name: value}
            for point in points
            for value in values
        ]
    if where is not None:
        points = [point for point in points if where(point)]
    return points


def expand_grid(
    outer: Iterable[T], inner: Callable[[T], Iterable[U]]
) -> list[tuple[T, U]]:
    """Ordered (outer, inner) pairs where the inner axis depends on the
    outer value — fig11's shape, where only some instructions sweep
    operand policies."""
    return [
        (o, i) for o in outer for i in inner(o)
    ]


def linspace(lo: float, hi: float, count: int) -> tuple[float, ...]:
    """``count`` evenly spaced values from ``lo`` to ``hi`` inclusive.

    ``count < 2`` collapses to ``(lo,)`` — the historical CLI axis
    behavior, kept so specs built from flags match old grids exactly.
    """
    if count < 2:
        return (lo,)
    return tuple(
        lo + i * (hi - lo) / (count - 1) for i in range(count)
    )


# ------------------------------------------------------------------ the spec
def _known_workloads() -> dict[str, object]:
    from repro.surrogate.workloads import CALIBRATION_WORKLOADS

    return CALIBRATION_WORKLOADS


def _known_personas() -> dict[str, object]:
    from repro.silicon.variation import PERSONAS

    return PERSONAS


def _check_axis(name: str, values: object) -> tuple[float, ...]:
    if isinstance(values, (str, bytes)) or not isinstance(
        values, (list, tuple)
    ):
        raise SpecError(
            name,
            f"expected a list of numbers, got {type(values).__name__}",
            'e.g. "vdd": [0.9, 1.0, 1.1]',
        )
    if not values:
        raise SpecError(name, "axis is empty", "give at least one value")
    out = []
    for i, v in enumerate(values):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise SpecError(
                name,
                f"element {i} is {v!r} ({type(v).__name__}), "
                "expected a number",
            )
        if not (v == v and abs(v) != float("inf")):
            raise SpecError(name, f"element {i} is not finite: {v!r}")
        out.append(float(v))
    return tuple(out)


@dataclass(frozen=True)
class SweepSpec:
    """A dense sweep as data: workload × personas × VDD × frequency.

    The point order is fixed — personas outermost, then VDD, then
    frequency (last axis fastest) — so two specs with equal fields
    produce byte-identical request streams, stable digests, and
    therefore checkpoint-journal and result-cache hits across
    processes, machines, and time.
    """

    workload: str
    personas: tuple[str, ...] = ("chip2",)
    vdd: tuple[float, ...] = (0.9, 1.0, 1.1)
    freq_mhz: tuple[float, ...] = field(
        default_factory=lambda: linspace(200.0, 850.0, 5)
    )
    quick: bool = False

    def __post_init__(self) -> None:
        workloads = _known_workloads()
        if self.workload not in workloads:
            raise SpecError(
                "workload",
                f"unknown workload {self.workload!r}",
                f"known: {', '.join(sorted(workloads))}",
            )
        if not self.personas:
            raise SpecError(
                "personas", "no personas given", "e.g. [\"chip2\"]"
            )
        personas = _known_personas()
        for name in self.personas:
            if name not in personas:
                raise SpecError(
                    "personas",
                    f"unknown persona {name!r}",
                    f"known: {', '.join(sorted(personas))}",
                )
        object.__setattr__(
            self, "personas", tuple(self.personas)
        )
        object.__setattr__(self, "vdd", _check_axis("vdd", self.vdd))
        object.__setattr__(
            self, "freq_mhz", _check_axis("freq_mhz", self.freq_mhz)
        )
        for name, axis, lo, hi in (
            ("vdd", self.vdd, 0.5, 1.5),
            ("freq_mhz", self.freq_mhz, 10.0, 2000.0),
        ):
            for v in axis:
                if not (lo <= v <= hi):
                    raise SpecError(
                        name,
                        f"value {v} outside the plausible range "
                        f"[{lo}, {hi}]",
                        "units are volts / MHz",
                    )

    # ------------------------------------------------------------ identity
    @property
    def experiment_id(self) -> str:
        """Checkpoint-journal id, shared with the historical CLI path."""
        return f"sweep-{self.workload}"

    @property
    def n_points(self) -> int:
        return len(self.personas) * len(self.vdd) * len(self.freq_mhz)

    def digest(self) -> str:
        """sha256 over the canonical JSON document (stable identity)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ---------------------------------------------------------- construction
    @classmethod
    def from_ranges(
        cls,
        workload: str,
        persona: str = "chip2",
        vdd_min: float = 0.9,
        vdd_max: float = 1.1,
        vdd_points: int = 3,
        freq_min_mhz: float = 200.0,
        freq_max_mhz: float = 850.0,
        freq_points: int = 5,
        quick: bool = False,
    ) -> "SweepSpec":
        """The CLI-flag construction path (``repro sweep`` defaults)."""
        return cls(
            workload=workload,
            personas=(persona,),
            vdd=linspace(vdd_min, vdd_max, vdd_points),
            freq_mhz=linspace(freq_min_mhz, freq_max_mhz, freq_points),
            quick=quick,
        )

    # --------------------------------------------------------------- points
    def points(self) -> "list[SweepPoint]":
        """The ordered grid cells (persona → VDD → frequency)."""
        from repro.experiments.sweep import SweepPoint

        personas = _known_personas()
        return [
            SweepPoint(
                persona=personas[cell["persona"]],
                vdd=cell["vdd"],
                freq_hz=cell["freq_mhz"] * 1e6,
            )
            for cell in grid_product(
                persona=self.personas,
                vdd=self.vdd,
                freq_mhz=self.freq_mhz,
            )
        ]

    def requests(self, seed: int = 0) -> "list[SimRequest]":
        """Ordered SimRequests with stable digests — what the journal
        and the service cache key on. Built by the exact construction
        path :func:`repro.experiments.sweep.sweep` executes, so a spec
        run anywhere produces the same request bytes."""
        from repro.experiments.sweep import build_requests

        named = _known_workloads()[self.workload]
        workload, warmup, window = named.build(self.quick)
        _, requests = build_requests(
            self.points(),
            lambda tile: workload[tile],
            tiles=list(workload),
            warmup_cycles=warmup,
            window_cycles=window,
            seed=seed,
        )
        return requests

    def request_digests(self, seed: int = 0) -> list[str]:
        from repro.resilience import request_digest

        return [
            request_digest(request).hex()
            for request in self.requests(seed=seed)
        ]

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": SWEEPSPEC_SCHEMA_VERSION,
            "workload": self.workload,
            "personas": list(self.personas),
            "vdd": list(self.vdd),
            "freq_mhz": list(self.freq_mhz),
            "quick": self.quick,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: object) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                "<document>",
                f"expected a JSON object, got {type(data).__name__}",
            )
        if "schema_version" not in data:
            raise SpecError(
                "schema_version",
                "missing",
                "not a SweepSpec document (or one written before "
                "versioning) — add \"schema_version\": "
                f"{SWEEPSPEC_SCHEMA_VERSION}",
            )
        version = data["schema_version"]
        if version != SWEEPSPEC_SCHEMA_VERSION:
            raise SpecError(
                "schema_version",
                f"unsupported version {version!r}",
                f"this build reads version {SWEEPSPEC_SCHEMA_VERSION} "
                "only",
            )
        known = {
            "schema_version",
            "workload",
            "personas",
            "vdd",
            "freq_mhz",
            "quick",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                unknown[0],
                "unknown field",
                f"allowed fields: {', '.join(sorted(known))}",
            )
        if "workload" not in data:
            raise SpecError(
                "workload", "missing", 'e.g. "workload": "mem_l2"'
            )
        workload = data["workload"]
        if not isinstance(workload, str):
            raise SpecError(
                "workload",
                f"expected a string, got {type(workload).__name__}",
            )
        personas = data.get("personas", ["chip2"])
        if isinstance(personas, str):
            personas = [personas]
        if not isinstance(personas, (list, tuple)) or not all(
            isinstance(p, str) for p in personas
        ):
            raise SpecError(
                "personas",
                "expected a list of persona names",
                'e.g. ["chip2", "chip3"]',
            )
        quick = data.get("quick", False)
        if not isinstance(quick, bool):
            raise SpecError(
                "quick",
                f"expected true/false, got {quick!r}",
            )
        kwargs: dict[str, object] = {
            "workload": workload,
            "personas": tuple(personas),
            "quick": quick,
        }
        for axis in ("vdd", "freq_mhz"):
            if axis in data:
                kwargs[axis] = _check_axis(axis, data[axis])
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(
                "<document>", f"not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)


def load_spec(path: str) -> SweepSpec:
    """Read and validate a serialized SweepSpec file.

    Raises :class:`SpecError` (with the field named) on any problem —
    the shared guard behind ``repro sweep --spec`` and
    ``repro serve --dry-run``.
    """
    from pathlib import Path

    p = Path(path)
    if not p.is_file():
        raise SpecError("<document>", f"no such spec file: {path}")
    return SweepSpec.from_json(p.read_text())


SWEEP_DOC_SCHEMA_VERSION = 1


def run_sweepspec(
    spec: SweepSpec,
    ctx,
    supervision=None,
    use_context_supervision: bool = True,
    seed: int = 0,
):
    """Execute one SweepSpec under a RunContext; returns a SweepResult.

    The single execution path behind ``repro sweep`` (flags or
    ``--spec FILE``) and the daemon's ``POST /v1/sweep``: grid cells
    come from :meth:`SweepSpec.points`, requests from
    :func:`~repro.experiments.sweep.build_requests`, execution from
    :func:`~repro.experiments.sweep.sweep`. ``supervision`` overrides
    the context-derived one (the service passes a CAS-backed journal
    here); ``use_context_supervision=False`` with ``supervision=None``
    runs bare.
    """
    from repro.experiments.sweep import sweep

    named = _known_workloads()[spec.workload]
    workload, warmup, window = named.build(spec.quick)
    if supervision is None and use_context_supervision:
        supervision = ctx.supervision(spec.experiment_id)
    return sweep(
        spec.points(),
        lambda tile: workload[tile],
        tiles=list(workload),
        warmup_cycles=warmup,
        window_cycles=window,
        seed=seed,
        jobs=ctx.jobs,
        tracer=ctx.tracer,
        supervision=supervision,
        batch=ctx.batch,
        fidelity=ctx.fidelity_policy(),
    )


def sweep_document(
    spec: SweepSpec,
    result,
    tier: str,
    fidelity: float,
    wall_s: float,
    counters: Mapping[str, int],
    meta: Mapping[str, object],
) -> dict[str, object]:
    """The machine-readable sweep document (``repro sweep --json`` and
    the daemon's ``POST /v1/sweep`` response share this serializer)."""
    from dataclasses import asdict

    doc: dict[str, object] = {
        "schema_version": SWEEP_DOC_SCHEMA_VERSION,
        "workload": spec.workload,
        "tier": tier,
        "fidelity": fidelity,
        "points": spec.n_points,
        "wall_s": wall_s,
        "spec": spec.to_dict(),
        "spec_digest": spec.digest(),
        "surrogate": {
            "hits": counters.get("surrogate_hits", 0),
            "fallbacks": counters.get("surrogate_fallbacks", 0),
            "max_err": meta.get("surrogate_max_err", 0.0),
        },
        "records": [asdict(r) for r in result.records],
    }
    if "cas_hits" in counters or "cas_misses" in counters:
        doc["cache"] = {
            "hits": counters.get("cas_hits", 0),
            "misses": counters.get("cas_misses", 0),
        }
    return doc


def describe_spec(spec: SweepSpec) -> str:
    """Human summary for ``repro serve --dry-run``."""
    lines = [
        f"SweepSpec: workload={spec.workload} quick={spec.quick}",
        f"  personas:  {', '.join(spec.personas)}",
        f"  vdd axis:  {list(spec.vdd)}",
        f"  freq axis: {[round(f, 3) for f in spec.freq_mhz]} MHz",
        f"  points:    {spec.n_points} "
        f"({len(spec.personas)} persona(s) x {len(spec.vdd)} VDD x "
        f"{len(spec.freq_mhz)} clocks)",
        f"  digest:    {spec.digest()}",
        f"  journal:   {spec.experiment_id}",
    ]
    return "\n".join(lines)
