"""Command-line interface: ``python -m repro``.

Subcommands mirror what a user of the real bench would do:

* ``list``                      — enumerate the reproducible experiments
* ``run <experiment>``          — regenerate one table/figure
* ``measure [--persona NAME]``  — the Table V static/idle measurements
* ``chart <experiment>``        — render a figure experiment as an
  ASCII chart (line chart over its numeric series)
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import EXPERIMENTS, get_experiment
from repro.silicon.variation import CHIP1, CHIP2, CHIP3, THERMAL_CHIP
from repro.util.charts import line_chart

PERSONAS = {
    "chip1": CHIP1,
    "chip2": CHIP2,
    "chip3": CHIP3,
    "thermal": THERMAL_CHIP,
}

#: Figure experiments with chartable series: id -> (series keys, y label).
CHARTABLE = {
    "fig9": (("chip1", "chip2", "chip3"), "MHz"),
    "fig10": (("idle_total_mw", "static_total_mw"), "mW"),
    "fig12": (("NSW", "HSW", "FSW", "FSWA"), "pJ"),
    "fig13": (
        ("Int_1tc", "Int_2tc", "HP_1tc", "HP_2tc", "Hist_1tc", "Hist_2tc"),
        "mW",
    ),
    "fig16": (("vdd_mw", "vio_mw", "vcs_mw"), "mW"),
}


def cmd_list(_args: argparse.Namespace) -> int:
    for eid, (_, description) in EXPERIMENTS.items():
        print(f"{eid:20s} {description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    runner = get_experiment(args.experiment)
    kwargs = {"quick": args.quick}
    jobs = getattr(args, "jobs", 1)
    if "jobs" in inspect.signature(runner).parameters:
        kwargs["jobs"] = jobs
    elif jobs > 1:
        print(
            f"note: {args.experiment} does not simulate per-point "
            "workloads; --jobs ignored",
            file=sys.stderr,
        )
    start = time.perf_counter()
    result = runner(**kwargs)
    print(result.render())
    print(f"\n[{args.experiment}: {time.perf_counter() - start:.1f}s]")
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    from repro.system import PitonSystem

    persona = PERSONAS[args.persona]
    system = PitonSystem.default(persona=persona)
    static = system.measure_static()
    idle = system.measure_idle()
    print(f"persona: {persona.name}")
    print(f"static (VDD+VCS): {static.core.format(1e-3)} mW")
    print(f"idle   (VDD+VCS): {idle.core.format(1e-3)} mW")
    print(
        "rails at idle: "
        f"VDD {idle.vdd.format(1e-3)} / VCS {idle.vcs.format(1e-3)} / "
        f"VIO {idle.vio.format(1e-3)} mW"
    )
    return 0


def cmd_chart(args: argparse.Namespace) -> int:
    if args.experiment not in CHARTABLE:
        print(
            f"no chart mapping for {args.experiment!r}; chartable: "
            f"{sorted(CHARTABLE)}",
            file=sys.stderr,
        )
        return 2
    keys, y_label = CHARTABLE[args.experiment]
    result = get_experiment(args.experiment)(quick=args.quick)
    series = {k: result.series[k] for k in keys if k in result.series}
    print(
        line_chart(
            series,
            title=f"{result.experiment_id}: {result.title}",
            y_label=y_label,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Piton power/energy characterization reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--quick", action="store_true")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation fan-out (results "
        "are identical for any value; default 1 = serial)",
    )
    run.set_defaults(func=cmd_run)

    measure = sub.add_parser(
        "measure", help="Table V static/idle measurement"
    )
    measure.add_argument(
        "--persona", choices=sorted(PERSONAS), default="chip2"
    )
    measure.set_defaults(func=cmd_measure)

    chart = sub.add_parser("chart", help="ASCII chart of a figure")
    chart.add_argument("experiment", choices=sorted(CHARTABLE))
    chart.add_argument("--quick", action="store_true")
    chart.set_defaults(func=cmd_chart)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
