"""Command-line interface: ``python -m repro``.

Subcommands mirror what a user of the real bench would do:

* ``list [--json]``             — enumerate the reproducible experiments
  (with registry metadata in JSON mode)
* ``run <experiment>``          — regenerate one table/figure;
  ``--json [--out FILE]`` emits the schema-versioned machine-readable
  document (rows, series, paper references, run manifest) instead of
  the ASCII table, and ``--trace`` prints a telemetry digest to stderr
* ``measure [--persona NAME]``  — the Table V static/idle measurements
* ``chart <experiment>``        — render a figure experiment as an
  ASCII chart (line chart over its numeric series); shares the run
  path with ``run``, so ``--quick``/``--jobs`` apply here too
* ``verify [experiments...]``   — golden-run differential harness:
  re-run experiments in quick mode and diff their JSON documents
  against the snapshots committed under ``tests/goldens/``
  (``--update`` regenerates them); exits 1 on any drift
* ``status [experiments...]``   — checkpoint completeness of
  interrupted campaigns (what ``run --resume`` would pick up)
* ``calibrate [workloads...]``  — fit surrogate profiles from
  cycle-level anchor runs (see :mod:`repro.surrogate`); persists
  per-workload profiles with per-metric error bars under
  ``results/surrogate/``
* ``sweep <workload>``          — dense V/f grid over one calibrated
  workload; ``--tier auto`` serves in-tolerance points from the
  analytical surrogate in microseconds instead of simulating them;
  ``--spec FILE`` loads the whole grid from a serialized
  :class:`~repro.sweepspec.SweepSpec` document
* ``serve``                     — the simulation service
  (:mod:`repro.serve`): experiments and sweeps over HTTP, answered
  from a content-addressed result cache when the identical request
  has already been simulated; ``--dry-run SPEC`` validates a spec
  file and exits

Grid subcommands take ``--tier {sim,auto,fast}`` (default ``sim`` —
bit-identical to every release before the surrogate existed) and
``--fidelity REL``, the worst surrogate error bound ``auto`` may
accept.

Every experiment runs through one :class:`~repro.experiments.RunContext`
— no per-runner signature sniffing — with telemetry enabled, so every
result carries a run manifest (span timings, per-point wall times,
per-component event rates, resilience counters).

Grid experiments run fault-tolerant (see :mod:`repro.resilience`):
worker crashes and hangs retry with backoff, completed points are
journaled, and SIGINT/SIGTERM exit with status
:data:`~repro.resilience.EXIT_RESUMABLE` (75) after checkpointing —
``run <exp> --resume`` then skips the already-simulated points and
produces the identical result.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    RunContext,
    get_spec,
)
from repro.experiments.context import DEFAULT_CHECKPOINT_DIR
from repro.obs import Tracer
from repro.resilience import (
    EXIT_RESUMABLE,
    GridInterrupted,
    journal_status,
    resumable_signals,
)
from repro.silicon.variation import PERSONAS
from repro.util.charts import line_chart
from repro.util.io import atomic_write_text


def _emit(text: str, out: str | None) -> None:
    """Print ``text``, or write it to ``--out FILE`` when given.

    File writes are atomic (temp + fsync + rename): an interrupt can
    never leave a truncated document under the requested name.
    """
    if out is None or out == "-":
        print(text)
    else:
        atomic_write_text(out, text, ensure_newline=True)


def _context_from_args(
    args: argparse.Namespace, jobs: int | None = None
) -> RunContext:
    """One RunContext from the shared run flags (see _add_run_flags)."""
    return RunContext(
        quick=args.quick,
        jobs=jobs if jobs is not None else getattr(args, "jobs", 1),
        tracer=Tracer(),
        out_format="json" if getattr(args, "json", False) else "table",
        checks=getattr(args, "checks", False),
        batch=getattr(args, "batch", True),
        retries=getattr(args, "retries", 2),
        deadline_s=getattr(args, "deadline", None),
        resume=getattr(args, "resume", False),
        checkpoint_dir=getattr(
            args, "checkpoint_dir", DEFAULT_CHECKPOINT_DIR
        ),
        tier=getattr(args, "tier", "sim"),
        fidelity=getattr(args, "fidelity", 0.05),
        profile_dir=getattr(args, "profile_dir", None),
    )


def _tier_summary(tier: str, counters, meta) -> str:
    """One-line surrogate accounting for non-``sim`` runs."""
    hits = counters.get("surrogate_hits", 0)
    fallbacks = counters.get("surrogate_fallbacks", 0)
    rejected = counters.get("points_tier_rejected", 0)
    max_err = meta.get("surrogate_max_err", 0.0)
    line = (
        f"tier={tier}: {hits} surrogate point(s), "
        f"{fallbacks} cycle-level fallback(s), "
        f"worst served error bound {max_err:.4%}"
    )
    if rejected:
        line += f", {rejected} journaled point(s) re-tiered"
    return line


def _run_in_context(args: argparse.Namespace) -> ExperimentResult:
    """The shared execution path for ``run`` and ``chart``.

    Builds one RunContext from the CLI flags and invokes the runner
    uniformly; experiments that never fan out simply ignore ``jobs``
    (the registry's ``supports_jobs`` drives the courtesy note).
    """
    spec = get_spec(args.experiment)
    jobs = getattr(args, "jobs", 1)
    if jobs > 1 and not spec.supports_jobs:
        print(
            f"note: {args.experiment} does not simulate per-point "
            "workloads; --jobs ignored",
            file=sys.stderr,
        )
    return spec.resolve()(_context_from_args(args, jobs=jobs))


def _interrupted(args: argparse.Namespace) -> int:
    """Report a checkpointed interrupt and return the resumable code."""
    ckpt = (
        Path(getattr(args, "checkpoint_dir", DEFAULT_CHECKPOINT_DIR))
        / args.experiment
    )
    hint = (
        f"completed points are checkpointed under {ckpt}; "
        f"re-run with --resume to continue"
        if ckpt.is_dir()
        else "no points completed yet; re-run from scratch"
    )
    print(f"\ninterrupted: {hint}", file=sys.stderr)
    return EXIT_RESUMABLE


def cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        from repro.experiments.registry import experiments_document

        print(json.dumps(experiments_document(), indent=2))
        return 0
    for eid, spec in EXPERIMENTS.items():
        flags = []
        if spec.supports_jobs:
            flags.append("jobs")
        if spec.chartable:
            flags.append("chart")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{eid:20s} {spec.description}{suffix}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    try:
        with resumable_signals():
            result = _run_in_context(args)
    except GridInterrupted:
        return _interrupted(args)
    if args.json:
        _emit(result.to_json(), args.out)
    else:
        _emit(result.render(), args.out)
        print(f"\n[{args.experiment}: {time.perf_counter() - start:.1f}s]")
    if args.tier != "sim" and result.manifest is not None:
        print(
            _tier_summary(
                result.manifest.tier,
                result.manifest.resilience or {},
                result.manifest.extra,
            ),
            file=sys.stderr,
        )
    if args.trace and result.manifest is not None:
        print(result.manifest.summary(), file=sys.stderr)
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    from repro.system import PitonSystem

    persona = PERSONAS[args.persona]
    system = PitonSystem.default(persona=persona)
    static = system.measure_static()
    idle = system.measure_idle()
    print(f"persona: {persona.name}")
    print(f"static (VDD+VCS): {static.core.format(1e-3)} mW")
    print(f"idle   (VDD+VCS): {idle.core.format(1e-3)} mW")
    print(
        "rails at idle: "
        f"VDD {idle.vdd.format(1e-3)} / VCS {idle.vcs.format(1e-3)} / "
        f"VIO {idle.vio.format(1e-3)} mW"
    )
    return 0


def cmd_chart(args: argparse.Namespace) -> int:
    spec = get_spec(args.experiment)
    if spec.chart is None:
        chartable = sorted(
            eid for eid, s in EXPERIMENTS.items() if s.chartable
        )
        print(
            f"no chart mapping for {args.experiment!r}; chartable: "
            f"{chartable}",
            file=sys.stderr,
        )
        return 2
    try:
        with resumable_signals():
            result = _run_in_context(args)
    except GridInterrupted:
        return _interrupted(args)
    series = {
        k: result.series[k]
        for k in spec.chart.series
        if k in result.series
    }
    _emit(
        line_chart(
            series,
            title=f"{result.experiment_id}: {result.title}",
            y_label=spec.chart.y_label,
        ),
        args.out,
    )
    if args.trace and result.manifest is not None:
        print(result.manifest.summary(), file=sys.stderr)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import verify_experiments

    experiment_ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    report = verify_experiments(
        experiment_ids,
        goldens_dir=Path(args.goldens) if args.goldens else None,
        update=args.update,
        jobs=args.jobs,
        rel_tol=args.tolerance,
        checks=args.checks,
        batch=args.batch,
        tier=args.tier,
        fidelity=args.fidelity,
        profile_dir=args.profile_dir,
    )
    for outcome in report.outcomes:
        status = outcome.status.upper()
        print(f"{status:8s} {outcome.experiment_id:20s} "
              f"[{outcome.wall_s:.1f}s]")
        for diff in outcome.diffs:
            print(f"         {diff}")
    if args.report:
        atomic_write_text(
            args.report,
            json.dumps(report.to_dict(), indent=2),
            ensure_newline=True,
        )
    passed = sum(o.ok for o in report.outcomes)
    print(f"{passed}/{len(report.outcomes)} experiments "
          f"{'updated' if args.update else 'verified'}")
    return 0 if report.ok else 1


def cmd_status(args: argparse.Namespace) -> int:
    """Checkpoint completeness: what ``run --resume`` would pick up."""
    root = Path(args.checkpoint_dir)
    experiment_ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    statuses = {
        eid: journal_status(root / eid) for eid in experiment_ids
    }
    if args.json:
        from repro.serve.status import status_document

        cas_stats = None
        if Path(args.cas_dir).is_dir():
            from repro.serve.cas import ResultCache

            cas_stats = ResultCache(args.cas_dir).stats()
        print(
            json.dumps(
                status_document(
                    root, experiment_ids, cas=cas_stats
                ),
                indent=2,
            )
        )
        return 0
    found = 0
    for eid, status in statuses.items():
        if not status.exists and not args.experiments:
            continue  # only surface live checkpoints by default
        found += 1
        if not status.exists:
            print(f"{eid:20s} no checkpoint")
            continue
        expected = (
            f"/{status.points_expected}"
            if status.points_expected is not None
            else ""
        )
        damaged = (
            f", {len(status.damaged)} damaged segment(s)"
            if status.damaged
            else ""
        )
        age = (
            f", updated {time.time() - status.updated_at:.0f}s ago"
            if status.updated_at
            else ""
        )
        print(
            f"{eid:20s} {status.points}{expected} point(s) "
            f"checkpointed ({status.bytes} bytes{damaged}{age}) — "
            "resumable with `run --resume`"
        )
    if found == 0:
        print(f"no checkpoints under {root} (nothing to resume)")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit surrogate profiles from cycle-level anchor runs."""
    from repro.surrogate import (
        CALIBRATION_WORKLOADS,
        ProfileStore,
        calibrate_named,
        default_anchor_freqs,
    )

    names = args.workloads or sorted(CALIBRATION_WORKLOADS)
    unknown = [n for n in names if n not in CALIBRATION_WORKLOADS]
    if unknown:
        known = ", ".join(sorted(CALIBRATION_WORKLOADS))
        print(
            f"unknown workload(s): {unknown} (known: {known})",
            file=sys.stderr,
        )
        return 2
    store = ProfileStore(args.profile_dir) if args.profile_dir else (
        ProfileStore()
    )
    anchor_freqs = default_anchor_freqs(
        args.anchors, (args.freq_min * 1e6, args.freq_max * 1e6)
    )
    reports = []
    for name in names:
        report = calibrate_named(
            name,
            quick=args.quick,
            anchor_freqs=anchor_freqs,
            store=store,
            safety=args.safety,
        )
        print(report.summary())
        print(f"  profile: {report.path}")
        reports.append(report)
    if args.report:
        atomic_write_text(
            args.report,
            json.dumps(
                {
                    "schema_version": 1,
                    "profiles": [r.to_dict() for r in reports],
                },
                indent=2,
            ),
            ensure_newline=True,
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Dense V/f grid over one named (calibratable) workload.

    The grid is a :class:`~repro.sweepspec.SweepSpec` — built from the
    CLI axis flags, or loaded whole from ``--spec FILE`` — and runs
    through the same execution path the ``repro serve`` daemon uses,
    so a spec produces identical requests (and therefore checkpoint
    and cache hits) no matter which surface submits it.

    This is the surrogate's home turf: on a memory-touching workload
    every distinct clock is its own timing class, so batching cannot
    coalesce the grid and ``--tier sim`` pays one cycle-level
    simulation per frequency. ``--tier auto`` serves every
    in-tolerance point from the calibrated profile instead.
    """
    from repro.sweepspec import (
        SpecError,
        SweepSpec,
        load_spec,
        run_sweepspec,
        sweep_document,
    )

    try:
        if args.spec is not None:
            if args.workload is not None:
                print(
                    "give either a workload or --spec FILE, not both",
                    file=sys.stderr,
                )
                return 2
            spec = load_spec(args.spec)
            if args.quick:
                spec = SweepSpec.from_dict(
                    {**spec.to_dict(), "quick": True}
                )
        elif args.workload is None:
            print(
                "a workload (or --spec FILE) is required",
                file=sys.stderr,
            )
            return 2
        else:
            spec = SweepSpec.from_ranges(
                args.workload,
                persona=args.persona,
                vdd_min=args.vdd_min,
                vdd_max=args.vdd_max,
                vdd_points=args.vdd_points,
                freq_min_mhz=args.freq_min,
                freq_max_mhz=args.freq_max,
                freq_points=args.freq_points,
                quick=args.quick,
            )
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Reuse the run-flag plumbing (journaling, retries, tier) with the
    # sweep's own checkpoint id so `sweep --resume` works like `run`.
    args.experiment = spec.experiment_id
    args.quick = spec.quick
    ctx = _context_from_args(args)
    start = time.perf_counter()
    try:
        with resumable_signals():
            result = run_sweepspec(spec, ctx)
    except GridInterrupted:
        return _interrupted(args)
    wall = time.perf_counter() - start
    counters = dict(ctx.trace.resilience)
    meta = dict(ctx.trace.meta)
    if args.json:
        doc = sweep_document(
            spec,
            result,
            tier=args.tier,
            fidelity=args.fidelity,
            wall_s=wall,
            counters=counters,
            meta=meta,
        )
        _emit(json.dumps(doc, indent=2), args.out)
    else:
        _emit(result.render(), args.out)
        print(
            f"\n[sweep {spec.workload}: {spec.n_points} points, "
            f"{wall:.1f}s]"
        )
    if args.tier != "sim":
        print(
            _tier_summary(args.tier, counters, meta), file=sys.stderr
        )
    return 0


def cmd_cas(args: argparse.Namespace) -> int:
    """Inspect/maintain the content-addressed result store."""
    from repro.serve.cas import ResultCache

    root = Path(args.cas_dir)
    if not root.is_dir():
        print(f"no store at {root}", file=sys.stderr)
        return 2
    cache = ResultCache(root)
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(
                f"{stats['entries']} entr"
                f"{'y' if stats['entries'] == 1 else 'ies'}, "
                f"{stats['bytes']} bytes under {root}"
            )
        return 0
    if args.action == "gc":
        if args.quota_mb is None:
            print("gc needs --quota-mb", file=sys.stderr)
            return 2
        evicted = cache.gc(int(args.quota_mb * 1024 * 1024))
        doc = {"evicted": evicted, **cache.stats()}
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(
                f"evicted {evicted} entr"
                f"{'y' if evicted == 1 else 'ies'}; "
                f"{doc['entries']} left ({doc['bytes']} bytes)"
            )
        return 0
    repaired = cache.scrub()
    doc = {"quarantined": repaired, **cache.stats()}
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"quarantined {repaired} damaged entr"
            f"{'y' if repaired == 1 else 'ies'}; "
            f"{doc['entries']} verified entries remain"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service (or just validate a spec file)."""
    from repro.sweepspec import SpecError, describe_spec, load_spec

    if args.dry_run is not None:
        try:
            spec = load_spec(args.dry_run)
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(describe_spec(spec))
        return 0
    from repro.serve import SimulationService

    service = SimulationService(
        host=args.host,
        port=args.port,
        cas_dir=args.cas_dir,
        checkpoint_dir=args.checkpoint_dir,
        profile_dir=args.profile_dir,
        workers=args.workers,
        jobs_dir=args.jobs_dir,
        queue_depth=args.queue_depth,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        cas_quota_mb=args.cas_quota_mb,
        gc_interval_s=args.gc_interval,
        retries=args.serve_retries,
        deadline_s=args.serve_deadline,
        drain_timeout_s=args.drain_timeout,
    )
    return service.run_blocking()


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every subcommand that executes an experiment."""
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation fan-out (results "
        "are identical for any value; default 1 = serial; 0 = auto, "
        "one worker per CPU this process may use)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="per-point retry budget for crashed/hung/failed pool "
        "workers before the final in-process attempt (default 2; "
        "retries never change results, only the manifest counters)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-point deadline in seconds before a worker is "
        "declared hung and its point retried (default: derived from "
        "completed-point wall times)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already journaled by an interrupted run "
        "(exit code 75) instead of re-simulating them; the final "
        "result is identical to an uninterrupted run",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=DEFAULT_CHECKPOINT_DIR,
        metavar="DIR",
        help="where completed points are journaled for --resume "
        f"(default: {DEFAULT_CHECKPOINT_DIR})",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the output to FILE instead of stdout",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the run's telemetry digest (spans, event rates) "
        "to stderr",
    )
    parser.add_argument(
        "--checks",
        action="store_true",
        help="run the repro.check invariant checkers during the "
        "simulation (results are bit-identical; a bookkeeping "
        "violation aborts the run loudly)",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="coalesce grid points sharing a timing class into one "
        "simulation each (default on; results are bit-identical "
        "either way — --no-batch only changes wall-clock)",
    )
    _add_tier_flags(parser)


def _add_tier_flags(parser: argparse.ArgumentParser) -> None:
    """The two-tier fidelity flags (see :mod:`repro.surrogate`)."""
    parser.add_argument(
        "--tier",
        choices=("sim", "auto", "fast"),
        default="sim",
        help="fidelity tier: 'sim' (default) simulates every point "
        "cycle-level, bit-identical to pre-surrogate releases; "
        "'auto' serves points from the calibrated surrogate when its "
        "persisted error bound fits --fidelity and falls back to the "
        "simulator otherwise; 'fast' serves every calibrated "
        "in-envelope point regardless of bound",
    )
    parser.add_argument(
        "--fidelity",
        type=float,
        default=0.05,
        metavar="REL",
        help="worst surrogate error bound --tier auto may accept, as "
        "a relative error (default 0.05 = 5%%); profiles whose "
        "calibrated bars exceed it simulate cycle-level",
    )
    parser.add_argument(
        "--profile-dir",
        default=None,
        metavar="DIR",
        help="where `repro calibrate` profiles live "
        "(default: results/surrogate)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Piton power/energy characterization reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_ = sub.add_parser("list", help="list experiments")
    list_.add_argument(
        "--json",
        action="store_true",
        help="print registry metadata as JSON",
    )
    list_.set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_run_flags(run)
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-versioned JSON document (rows, series, "
        "paper references, run manifest) instead of the ASCII table",
    )
    run.set_defaults(func=cmd_run)

    measure = sub.add_parser(
        "measure", help="Table V static/idle measurement"
    )
    measure.add_argument(
        "--persona", choices=sorted(PERSONAS), default="chip2"
    )
    measure.set_defaults(func=cmd_measure)

    verify = sub.add_parser(
        "verify",
        help="diff live quick runs against the committed goldens",
        description="Re-run experiments in quick mode and diff their "
        "JSON documents against the golden snapshots under "
        "tests/goldens/ with per-metric tolerances. Exit status 1 on "
        "any drift.",
    )
    verify.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to verify (default: all registered)",
    )
    verify.add_argument(
        "--update",
        action="store_true",
        help="regenerate the golden snapshots instead of diffing",
    )
    verify.add_argument(
        "--goldens",
        default=None,
        metavar="DIR",
        help="golden directory (default: tests/goldens/)",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per experiment (results identical)",
    )
    verify.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance override for metric comparisons",
    )
    verify.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON verification report to FILE",
    )
    verify.add_argument(
        "--checks",
        action="store_true",
        help="also run the invariant checkers during the live runs",
    )
    verify.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="coalesce timing-equivalent grid points during the live "
        "runs (bit-identical results; the goldens cannot tell)",
    )
    _add_tier_flags(verify)
    verify.set_defaults(func=cmd_verify)

    status = sub.add_parser(
        "status",
        help="checkpoint completeness of interrupted campaigns",
        description="Inspect the checkpoint journals left by "
        "interrupted runs: how many points each campaign completed, "
        "whether any segment is damaged, and what `run --resume` "
        "would pick up.",
    )
    status.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to inspect (default: all with checkpoints)",
    )
    status.add_argument(
        "--checkpoint-dir",
        default=DEFAULT_CHECKPOINT_DIR,
        metavar="DIR",
        help=f"journal location (default: {DEFAULT_CHECKPOINT_DIR})",
    )
    status.add_argument(
        "--cas-dir",
        default="results/cas",
        metavar="DIR",
        help="content-addressed result store to report statistics "
        "for in --json output (default: results/cas; skipped when "
        "the directory does not exist)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="print the per-experiment journal status as JSON",
    )
    status.set_defaults(func=cmd_status)

    cas = sub.add_parser(
        "cas",
        help="inspect and maintain the content-addressed result store",
        description="Lifecycle tooling for the store `repro serve` "
        "memoizes results in: `stats` prints entry counts and bytes, "
        "`gc` evicts least-recently-used entries until the store fits "
        "a size quota, `scrub` quarantines entries whose CRC framing "
        "fails verification.",
    )
    cas.add_argument(
        "action",
        choices=("stats", "gc", "scrub"),
        help="stats = report; gc = LRU-evict to --quota-mb; "
        "scrub = quarantine damaged frames",
    )
    cas.add_argument(
        "--cas-dir",
        default="results/cas",
        metavar="DIR",
        help="store location (default: results/cas)",
    )
    cas.add_argument(
        "--quota-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size quota for gc (required by the gc action)",
    )
    cas.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON",
    )
    cas.set_defaults(func=cmd_cas)

    chart = sub.add_parser("chart", help="ASCII chart of a figure")
    chart.add_argument(
        "experiment",
        choices=sorted(
            eid for eid, spec in EXPERIMENTS.items() if spec.chartable
        ),
    )
    _add_run_flags(chart)
    chart.set_defaults(func=cmd_chart)

    from repro.surrogate.workloads import CALIBRATION_WORKLOADS

    calibrate = sub.add_parser(
        "calibrate",
        help="fit surrogate profiles from cycle-level anchor runs",
        description="Run each workload on the cycle-level simulator "
        "at a handful of anchor clocks, fit the analytical surrogate "
        "profile, validate it against held-out clocks, and persist "
        "the profile with per-metric error bars. Calibrated "
        "workloads are then eligible for `--tier auto/fast` "
        "dispatch on run/sweep/verify.",
    )
    calibrate.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="workloads to calibrate (default: all; known: "
        f"{', '.join(sorted(CALIBRATION_WORKLOADS))})",
    )
    calibrate.add_argument("--quick", action="store_true")
    calibrate.add_argument(
        "--anchors",
        type=int,
        default=4,
        metavar="N",
        help="cycle-level anchor clocks per frequency-dependent "
        "workload (default 4; frequency-independent workloads "
        "always take exactly one)",
    )
    calibrate.add_argument(
        "--freq-min",
        type=float,
        default=150.0,
        metavar="MHZ",
        help="lowest anchor clock in MHz (default 150)",
    )
    calibrate.add_argument(
        "--freq-max",
        type=float,
        default=900.0,
        metavar="MHZ",
        help="highest anchor clock in MHz (default 900)",
    )
    calibrate.add_argument(
        "--safety",
        type=float,
        default=3.0,
        metavar="X",
        help="error-bar safety margin over the worst validation "
        "error (default 3.0)",
    )
    calibrate.add_argument(
        "--profile-dir",
        default=None,
        metavar="DIR",
        help="where to persist profiles (default: results/surrogate)",
    )
    calibrate.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON calibration report (anchors, error "
        "bars, validation rows) to FILE",
    )
    calibrate.set_defaults(func=cmd_calibrate)

    sweep_ = sub.add_parser(
        "sweep",
        help="dense V/f grid over one calibratable workload",
        description="Sweep one registry workload over a VDD x "
        "frequency grid. Distinct clocks on a memory-touching "
        "workload are distinct timing classes (batching cannot "
        "coalesce them), so `--tier sim` pays one cycle-level "
        "simulation per frequency while `--tier auto` serves "
        "calibrated in-tolerance points from the surrogate.",
    )
    sweep_.add_argument(
        "workload",
        nargs="?",
        default=None,
        choices=sorted(CALIBRATION_WORKLOADS),
    )
    sweep_.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="load the whole grid from a serialized SweepSpec JSON "
        "document instead of the axis flags (validate one without "
        "running via `repro serve --dry-run FILE`)",
    )
    _add_run_flags(sweep_)
    sweep_.add_argument(
        "--persona", choices=sorted(PERSONAS), default="chip2"
    )
    sweep_.add_argument(
        "--vdd-min", type=float, default=0.9, metavar="V"
    )
    sweep_.add_argument(
        "--vdd-max", type=float, default=1.1, metavar="V"
    )
    sweep_.add_argument(
        "--vdd-points", type=int, default=3, metavar="N"
    )
    sweep_.add_argument(
        "--freq-min",
        type=float,
        default=200.0,
        metavar="MHZ",
        help="lowest sweep clock in MHz (default 200; keep inside "
        "the calibrated envelope for surrogate hits)",
    )
    sweep_.add_argument(
        "--freq-max",
        type=float,
        default=850.0,
        metavar="MHZ",
        help="highest sweep clock in MHz (default 850)",
    )
    sweep_.add_argument(
        "--freq-points", type=int, default=5, metavar="N"
    )
    sweep_.add_argument(
        "--json",
        action="store_true",
        help="emit the grid records plus surrogate accounting as JSON",
    )
    sweep_.set_defaults(func=cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="simulation-as-a-service daemon with a result cache",
        description="Serve the experiment runners over HTTP: POST "
        "/v1/run and /v1/sweep execute (or answer from the "
        "content-addressed result cache under results/cas/), GET "
        "/v1/jobs/<id> reports/streams job progress, GET "
        "/v1/experiments and /v1/status mirror `repro list --json` "
        "and `repro status --json`. Identical in-flight requests "
        "coalesce onto one simulation.",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default 8765; 0 = pick a free port)",
    )
    serve.add_argument(
        "--cas-dir",
        default="results/cas",
        metavar="DIR",
        help="content-addressed result store (default: results/cas)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=DEFAULT_CHECKPOINT_DIR,
        metavar="DIR",
        help="journal location reported by GET /v1/status "
        f"(default: {DEFAULT_CHECKPOINT_DIR})",
    )
    serve.add_argument(
        "--profile-dir",
        default=None,
        metavar="DIR",
        help="where `repro calibrate` profiles live "
        "(default: results/surrogate)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent isolated worker processes (default 2)",
    )
    serve.add_argument(
        "--jobs-dir",
        default="results/serve/jobs",
        metavar="DIR",
        help="durable job journal; interrupted jobs recorded here "
        "are recovered on the next start "
        "(default: results/serve/jobs)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="admitted jobs allowed beyond the running workers "
        "before new simulating requests get 503 + Retry-After "
        "(default 8)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="RPS",
        help="per-client token-bucket refill rate for simulating "
        "POSTs; over-budget clients get 429 + Retry-After "
        "(default 0 = unlimited)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=5.0,
        metavar="N",
        help="per-client burst capacity when --rate-limit is set "
        "(default 5)",
    )
    serve.add_argument(
        "--cas-quota-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size quota for the result store; a background task "
        "LRU-evicts past it (default: unlimited)",
    )
    serve.add_argument(
        "--gc-interval",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds between background quota-enforcement passes "
        "(default 60)",
    )
    serve.add_argument(
        "--serve-retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget for a crashed/hung worker process before "
        "the job fails with 500 (default 2)",
    )
    serve.add_argument(
        "--serve-deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-job deadline before a worker is declared hung and "
        "retried (default: none)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="on SIGTERM, seconds to let running jobs finish before "
        "journaling the stragglers and exiting 75 (default 30)",
    )
    serve.add_argument(
        "--dry-run",
        default=None,
        metavar="SPEC",
        help="validate a SweepSpec file, print its grid summary and "
        "digest, and exit without starting the server",
    )
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main(argv=None))
