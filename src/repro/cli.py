"""Command-line interface: ``python -m repro``.

Subcommands mirror what a user of the real bench would do:

* ``list [--json]``             — enumerate the reproducible experiments
  (with registry metadata in JSON mode)
* ``run <experiment>``          — regenerate one table/figure;
  ``--json [--out FILE]`` emits the schema-versioned machine-readable
  document (rows, series, paper references, run manifest) instead of
  the ASCII table, and ``--trace`` prints a telemetry digest to stderr
* ``measure [--persona NAME]``  — the Table V static/idle measurements
* ``chart <experiment>``        — render a figure experiment as an
  ASCII chart (line chart over its numeric series); shares the run
  path with ``run``, so ``--quick``/``--jobs`` apply here too
* ``verify [experiments...]``   — golden-run differential harness:
  re-run experiments in quick mode and diff their JSON documents
  against the snapshots committed under ``tests/goldens/``
  (``--update`` regenerates them); exits 1 on any drift

Every experiment runs through one :class:`~repro.experiments.RunContext`
— no per-runner signature sniffing — with telemetry enabled, so every
result carries a run manifest (span timings, per-point wall times,
per-component event rates).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    RunContext,
    get_spec,
)
from repro.obs import Tracer
from repro.silicon.variation import CHIP1, CHIP2, CHIP3, THERMAL_CHIP
from repro.util.charts import line_chart

PERSONAS = {
    "chip1": CHIP1,
    "chip2": CHIP2,
    "chip3": CHIP3,
    "thermal": THERMAL_CHIP,
}


def _emit(text: str, out: str | None) -> None:
    """Print ``text``, or write it to ``--out FILE`` when given."""
    if out is None or out == "-":
        print(text)
    else:
        with open(out, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")


def _run_in_context(args: argparse.Namespace) -> ExperimentResult:
    """The shared execution path for ``run`` and ``chart``.

    Builds one RunContext from the CLI flags and invokes the runner
    uniformly; experiments that never fan out simply ignore ``jobs``
    (the registry's ``supports_jobs`` drives the courtesy note).
    """
    spec = get_spec(args.experiment)
    jobs = getattr(args, "jobs", 1)
    if jobs > 1 and not spec.supports_jobs:
        print(
            f"note: {args.experiment} does not simulate per-point "
            "workloads; --jobs ignored",
            file=sys.stderr,
        )
    ctx = RunContext(
        quick=args.quick,
        jobs=jobs,
        tracer=Tracer(),
        out_format="json" if getattr(args, "json", False) else "table",
        checks=getattr(args, "checks", False),
    )
    return spec.resolve()(ctx)


def cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        print(
            json.dumps(
                [spec.metadata() for spec in EXPERIMENTS.values()],
                indent=2,
            )
        )
        return 0
    for eid, spec in EXPERIMENTS.items():
        flags = []
        if spec.supports_jobs:
            flags.append("jobs")
        if spec.chartable:
            flags.append("chart")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{eid:20s} {spec.description}{suffix}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    result = _run_in_context(args)
    if args.json:
        _emit(result.to_json(), args.out)
    else:
        _emit(result.render(), args.out)
        print(f"\n[{args.experiment}: {time.perf_counter() - start:.1f}s]")
    if args.trace and result.manifest is not None:
        print(result.manifest.summary(), file=sys.stderr)
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    from repro.system import PitonSystem

    persona = PERSONAS[args.persona]
    system = PitonSystem.default(persona=persona)
    static = system.measure_static()
    idle = system.measure_idle()
    print(f"persona: {persona.name}")
    print(f"static (VDD+VCS): {static.core.format(1e-3)} mW")
    print(f"idle   (VDD+VCS): {idle.core.format(1e-3)} mW")
    print(
        "rails at idle: "
        f"VDD {idle.vdd.format(1e-3)} / VCS {idle.vcs.format(1e-3)} / "
        f"VIO {idle.vio.format(1e-3)} mW"
    )
    return 0


def cmd_chart(args: argparse.Namespace) -> int:
    spec = get_spec(args.experiment)
    if spec.chart is None:
        chartable = sorted(
            eid for eid, s in EXPERIMENTS.items() if s.chartable
        )
        print(
            f"no chart mapping for {args.experiment!r}; chartable: "
            f"{chartable}",
            file=sys.stderr,
        )
        return 2
    result = _run_in_context(args)
    series = {
        k: result.series[k]
        for k in spec.chart.series
        if k in result.series
    }
    _emit(
        line_chart(
            series,
            title=f"{result.experiment_id}: {result.title}",
            y_label=spec.chart.y_label,
        ),
        args.out,
    )
    if args.trace and result.manifest is not None:
        print(result.manifest.summary(), file=sys.stderr)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import verify_experiments

    experiment_ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    report = verify_experiments(
        experiment_ids,
        goldens_dir=Path(args.goldens) if args.goldens else None,
        update=args.update,
        jobs=args.jobs,
        rel_tol=args.tolerance,
        checks=args.checks,
    )
    for outcome in report.outcomes:
        status = outcome.status.upper()
        print(f"{status:8s} {outcome.experiment_id:20s} "
              f"[{outcome.wall_s:.1f}s]")
        for diff in outcome.diffs:
            print(f"         {diff}")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    passed = sum(o.ok for o in report.outcomes)
    print(f"{passed}/{len(report.outcomes)} experiments "
          f"{'updated' if args.update else 'verified'}")
    return 0 if report.ok else 1


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every subcommand that executes an experiment."""
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation fan-out (results "
        "are identical for any value; default 1 = serial)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the output to FILE instead of stdout",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the run's telemetry digest (spans, event rates) "
        "to stderr",
    )
    parser.add_argument(
        "--checks",
        action="store_true",
        help="run the repro.check invariant checkers during the "
        "simulation (results are bit-identical; a bookkeeping "
        "violation aborts the run loudly)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Piton power/energy characterization reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_ = sub.add_parser("list", help="list experiments")
    list_.add_argument(
        "--json",
        action="store_true",
        help="print registry metadata as JSON",
    )
    list_.set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_run_flags(run)
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-versioned JSON document (rows, series, "
        "paper references, run manifest) instead of the ASCII table",
    )
    run.set_defaults(func=cmd_run)

    measure = sub.add_parser(
        "measure", help="Table V static/idle measurement"
    )
    measure.add_argument(
        "--persona", choices=sorted(PERSONAS), default="chip2"
    )
    measure.set_defaults(func=cmd_measure)

    verify = sub.add_parser(
        "verify",
        help="diff live quick runs against the committed goldens",
        description="Re-run experiments in quick mode and diff their "
        "JSON documents against the golden snapshots under "
        "tests/goldens/ with per-metric tolerances. Exit status 1 on "
        "any drift.",
    )
    verify.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to verify (default: all registered)",
    )
    verify.add_argument(
        "--update",
        action="store_true",
        help="regenerate the golden snapshots instead of diffing",
    )
    verify.add_argument(
        "--goldens",
        default=None,
        metavar="DIR",
        help="golden directory (default: tests/goldens/)",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per experiment (results identical)",
    )
    verify.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance override for metric comparisons",
    )
    verify.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON verification report to FILE",
    )
    verify.add_argument(
        "--checks",
        action="store_true",
        help="also run the invariant checkers during the live runs",
    )
    verify.set_defaults(func=cmd_verify)

    chart = sub.add_parser("chart", help="ASCII chart of a figure")
    chart.add_argument(
        "experiment",
        choices=sorted(
            eid for eid, spec in EXPERIMENTS.items() if spec.chartable
        ),
    )
    _add_run_flags(chart)
    chart.set_defaults(func=cmd_chart)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main(argv=None))
