"""The paper's NoC energy-per-flit methodology (Section IV-G).

    EPF = (47/7) x (P_hop - P_base) / f

``P_base`` is the steady-state power while the chipset streams dummy
packets to tile 0 (zero mesh hops); ``P_hop`` the power streaming to a
tile ``h`` hops away. The 47/7 factor converts average per-cycle energy
into per-valid-flit energy: the chip bridge's bandwidth mismatch admits
exactly 7 valid flits per repeating 47-cycle pattern (verified through
simulation in the paper; reproduced by
:meth:`repro.chip.chipbridge.ChipBridge.traffic_pattern`).
"""

from __future__ import annotations

from repro.util.stats import Measurement


def energy_per_flit(
    p_hop_w: Measurement,
    p_base_w: Measurement,
    freq_hz: float,
    pattern_cycles: int = 47,
    pattern_flits: int = 7,
) -> Measurement:
    """Apply the EPF equation; returns joules per flit (for the given
    hop count, relative to the zero-hop baseline)."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    if pattern_cycles <= 0 or pattern_flits <= 0:
        raise ValueError("traffic pattern must be non-empty")
    delta = p_hop_w - p_base_w
    return delta * (pattern_cycles / (pattern_flits * freq_hz))


def pj_per_hop_trendline(
    hops: list[int], epf_j: list[float]
) -> tuple[float, float]:
    """Least-squares (slope, intercept) of EPF versus hop count, the
    quantity Figure 12's legend quotes (e.g. ~11.16 pJ/hop for HSW).
    Returned in joules per hop / joules."""
    if len(hops) != len(epf_j) or len(hops) < 2:
        raise ValueError("need matching lists with at least two points")
    n = len(hops)
    mean_x = sum(hops) / n
    mean_y = sum(epf_j) / n
    sxx = sum((x - mean_x) ** 2 for x in hops)
    if sxx == 0:
        raise ValueError("hop counts are all identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(hops, epf_j))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x
