"""Refit the power model's global anchors to new measurements.

The paper's data lets other groups calibrate models to *their* chip;
this module is the inverse tool for the reproduction: given a chip's
measured static and idle powers (and optionally two Fmax points), solve
the calibration constants so the *bench-measured* values — including
the self-heating fixed point — land on the targets. This is exactly
the procedure used to fit the shipped defaults to Table V and Figure 9
(see ``calibration.py``), packaged for reuse.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import ChipPersona, TYPICAL


def _measured_core_w(
    calib: Calibration,
    persona: ChipPersona,
    idle: bool,
    r_ja: float,
    ambient_c: float = 25.0,
) -> float:
    """Noise-free bench measurement at the thermal fixed point."""
    model = ChipPowerModel(persona, calib)
    temp = ambient_c
    for _ in range(300):
        op = OperatingPoint(temp_c=temp)
        power = (
            model.idle_power(op) if idle else model.static_power(op)
        ).total_w
        new_temp = ambient_c + r_ja * power
        if abs(new_temp - temp) < 1e-7:
            break
        temp += 0.5 * (new_temp - temp)
    op = OperatingPoint(temp_c=temp)
    rails = model.idle_power(op) if idle else model.static_power(op)
    return rails.vdd_w + rails.vcs_w


def fit_static_idle(
    static_target_w: float,
    idle_target_w: float,
    persona: ChipPersona = TYPICAL,
    base: Calibration = DEFAULT_CALIBRATION,
    iterations: int = 60,
) -> Calibration:
    """Solve (static_total_w, idle_cap_f) so the measured values hit
    the targets under the self-heating fixed point.

    Alternating one-dimensional updates; each sub-problem is monotone,
    so the iteration contracts quickly.
    """
    if static_target_w <= 0 or idle_target_w <= static_target_w:
        raise ValueError(
            "need 0 < static target < idle target (watts)"
        )
    calib = base
    r_ja = base.r_theta_ja
    for _ in range(iterations):
        measured_static = _measured_core_w(calib, persona, False, r_ja)
        calib = replace(
            calib,
            static_total_w=calib.static_total_w
            * static_target_w
            / measured_static,
        )
        measured_idle = _measured_core_w(calib, persona, True, r_ja)
        # Attribute the idle error to the clock capacitance.
        freq = 500.05e6
        eff_v2 = (
            calib.idle_vdd_frac * 1.0
            + (1 - calib.idle_vdd_frac) * 1.05**2
        )
        delta_cap = (idle_target_w - measured_idle) / (eff_v2 * freq)
        calib = replace(
            calib, idle_cap_f=max(1e-12, calib.idle_cap_f + delta_cap)
        )
        if (
            abs(measured_static - static_target_w) < 1e-6
            and abs(measured_idle - idle_target_w) < 1e-6
        ):
            break
    return calib


def fit_fmax(
    anchors: list[tuple[float, float]],
    base: Calibration = DEFAULT_CALIBRATION,
) -> Calibration:
    """Fit the alpha-power-law Fmax parameters to (VDD, Hz) anchors.

    With one anchor only the reference scale moves; with two or more,
    (vth, alpha) are grid-searched and the scale follows analytically.
    """
    if not anchors:
        raise ValueError("need at least one (vdd, hz) anchor")
    ref_vdd, ref_hz = anchors[-1]
    if len(anchors) == 1:
        return replace(
            base, fmax_ref_vdd=ref_vdd, fmax_ref_hz=ref_hz
        )

    def shape(v: float, vth: float, alpha: float) -> float:
        if v <= vth:
            return 0.0
        return (v - vth) ** alpha / v

    best = None
    for vth_i in range(20, 61):
        vth = vth_i / 100.0
        for alpha_i in range(100, 221, 5):
            alpha = alpha_i / 100.0
            base_shape = shape(ref_vdd, vth, alpha)
            if base_shape == 0.0:
                continue
            error = 0.0
            for vdd, hz in anchors:
                predicted = ref_hz * shape(vdd, vth, alpha) / base_shape
                error += (math.log(max(predicted, 1.0)) - math.log(hz)) ** 2
            if best is None or error < best[0]:
                best = (error, vth, alpha)
    assert best is not None
    _, vth, alpha = best
    return replace(
        base,
        vth_v=vth,
        alpha=alpha,
        fmax_ref_vdd=ref_vdd,
        fmax_ref_hz=ref_hz,
    )
