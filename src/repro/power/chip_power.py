"""Rail-level power aggregation: events + operating point -> watts.

This is the model the virtual test board "measures". Given an event
ledger covering ``window_cycles`` of simulated time at an operating
point, it returns per-rail power:

    P_rail = static(V, T) + clock(V, f) + sum(events) / window_time

mirroring how the real chip's measured power decomposes in Figures 10
and 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.power.technology import clock_power_w, static_power_w
from repro.silicon.variation import ChipPersona, TYPICAL
from repro.util.events import EventLedger

PJ = 1e-12


@dataclass(frozen=True)
class OperatingPoint:
    """Voltages, clock, and die temperature for one measurement."""

    vdd: float = 1.00
    vcs: float = 1.05
    vio: float = 1.80
    freq_hz: float = 500.05e6
    temp_c: float = 25.0

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError("frequency must be positive")
        for name in ("vdd", "vcs", "vio"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class RailPower:
    """Per-rail power in watts."""

    vdd_w: float
    vcs_w: float
    vio_w: float

    @property
    def total_w(self) -> float:
        return self.vdd_w + self.vcs_w + self.vio_w

    @property
    def core_w(self) -> float:
        """VDD + VCS: what the paper's EPI/EPF methodology sums."""
        return self.vdd_w + self.vcs_w

    def __add__(self, other: "RailPower") -> "RailPower":
        return RailPower(
            self.vdd_w + other.vdd_w,
            self.vcs_w + other.vcs_w,
            self.vio_w + other.vio_w,
        )


class ChipPowerModel:
    """Prices a chip persona's power at an operating point."""

    def __init__(
        self,
        persona: ChipPersona = TYPICAL,
        calib: Calibration = DEFAULT_CALIBRATION,
    ):
        self.persona = persona
        self.calib = calib

    # ----------------------------------------------------------------- pieces
    def static_power(self, op: OperatingPoint) -> RailPower:
        """All inputs grounded, clocks stopped (the Fig 10 'static')."""
        vdd_w, vcs_w = static_power_w(
            op.vdd, op.vcs, op.temp_c, self.persona, self.calib
        )
        # VIO static: receiver bias + board-side pullups, small.
        vio_w = 0.012 * (op.vio / self.calib.vio_nom) ** 2
        return RailPower(vdd_w, vcs_w, vio_w)

    def idle_power(self, op: OperatingPoint) -> RailPower:
        """Clocks running, resets released, no activity (Fig 10 'idle').

        Includes the always-running I/O clock on the VIO rail.
        """
        static = self.static_power(op)
        clk_vdd, clk_vcs = clock_power_w(
            op.vdd, op.vcs, op.freq_hz, self.persona, self.calib
        )
        io_clock_w = 0.055 * (op.vio / self.calib.vio_nom) ** 2
        return static + RailPower(clk_vdd, clk_vcs, io_clock_w)

    def event_power(
        self,
        ledger: EventLedger,
        window_cycles: float,
        op: OperatingPoint,
    ) -> RailPower:
        """Activity power from recorded events over a cycle window."""
        if window_cycles <= 0:
            raise ValueError("window must cover at least one cycle")
        window_s = window_cycles / op.freq_hz
        s_vdd = (op.vdd / self.calib.vdd_nom) ** 2
        s_vcs = (op.vcs / self.calib.vcs_nom) ** 2
        s_vio = (op.vio / self.calib.vio_nom) ** 2
        vdd_j = vcs_j = vio_j = 0.0
        for name, count in ledger.counts.items():
            price = self.calib.energy_for(name)
            if price is None or count == 0:
                continue
            activity = ledger.mean_activity(name)
            energy_pj = count * (price.base_pj + price.act_pj * activity)
            energy_j = energy_pj * PJ * self.persona.dyn
            if price.rail == "io":
                vio_j += energy_j * s_vio
            else:
                vdd_j += energy_j * s_vdd * price.vdd_frac
                vcs_j += energy_j * s_vcs * (1.0 - price.vdd_frac)
        return RailPower(vdd_j / window_s, vcs_j / window_s, vio_j / window_s)

    # ------------------------------------------------------------------ total
    def total_power(
        self,
        ledger: EventLedger,
        window_cycles: float,
        op: OperatingPoint,
    ) -> RailPower:
        """Idle baseline plus activity power."""
        return self.idle_power(op) + self.event_power(
            ledger, window_cycles, op
        )

    def unknown_events(self, ledger: EventLedger) -> list[str]:
        """Event names the calibration does not price (should be none
        in a healthy run; surfaced for tests)."""
        return sorted(
            name
            for name, count in ledger.counts.items()
            if count > 0 and self.calib.energy_for(name) is None
        )
