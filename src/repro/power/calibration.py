"""Every calibrated constant of the power model, with its paper anchor.

Calibration policy (DESIGN.md section 4): constants are fitted once
against the paper's published anchor numbers; all experiment outputs
are then *derived* through simulation plus the paper's measurement
methodology. Nothing in :mod:`repro.experiments` contains result
numbers — if a constant changes here, every downstream table moves.

Event energies are specified in picojoules *per event at nominal rail
voltage* (VDD=1.00V for the logic share, VCS=1.05V for the SRAM share)
and scale quadratically with voltage. ``act_pj`` is multiplied by the
event's mean recorded activity factor (0 for all-zero operands, 0.5
for random data, 1 for all-ones), which is how operand values move EPI
in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class EventEnergy:
    """Price of one event class.

    ``vdd_frac`` of the (voltage-scaled) energy draws from VDD and the
    rest from VCS; events with ``rail="io"`` draw from VIO instead and
    scale with (VIO/1.8)^2.
    """

    base_pj: float
    act_pj: float = 0.0
    vdd_frac: float = 1.0
    rail: str = "core"  # "core" or "io"

    def __post_init__(self) -> None:
        if self.base_pj < 0 or self.act_pj < 0:
            raise ValueError("energies must be non-negative")
        if not 0.0 <= self.vdd_frac <= 1.0:
            raise ValueError("vdd_frac must be in [0, 1]")
        if self.rail not in ("core", "io"):
            raise ValueError(f"unknown rail {self.rail!r}")


def _core(base: float, act: float = 0.0, vdd: float = 1.0) -> EventEnergy:
    return EventEnergy(base_pj=base, act_pj=act, vdd_frac=vdd)


def _sram(base: float, act: float = 0.0, vdd: float = 0.3) -> EventEnergy:
    return EventEnergy(base_pj=base, act_pj=act, vdd_frac=vdd)


#: Per-event energies. Anchors, from the paper:
#:   [A1] EPI(ldx, L1 hit) = 286.46 pJ and "three add instructions ...
#:        same energy and latency as a ldx that hits in the L1", so
#:        EPI(add, random) ~ 95 pJ                       (Sec IV-E/F)
#:   [A2] Table VII: local L2 hit 1.54 nJ, remote +~0.33 nJ/4 hops,
#:        L2 miss 308.7 nJ (contended; see experiments/table7)
#:   [A3] Fig 12 trendlines: NSW 3.58, HSW 11.16, FSW 16.68, FSWA
#:        16.98 pJ/hop -> least-squares: router 3.9 pJ + 13.1 pJ x
#:        switching fraction + 0.3 pJ x coupling fraction
#:   [A4] Fig 13 slopes: Int 22.8/37.4, HP 35.6/57.8, Hist 14.5/14.4
#:        mW/core (drives the logic-op, thread-switch, and stall prices)
#:   [A5] Fig 11 bar heights by class (long-latency classes highest)
EVENT_ENERGIES: Mapping[str, EventEnergy] = {
    # --- core front-end / control -------------------------------------------
    "core.fetch": _sram(15.0, vdd=0.45),  # L1I access per issue
    "core.active_cycle": _core(10.0),  # decode, thread-sel, bypass
    "core.stall_cycle": _core(5.0),  # scheduler looking for work [A4]
    "core.thread_switch": _core(20.0),  # FG-MT context mux [A4]
    "core.rollback": _core(60.0),  # flush + replay control
    "core.replay_bubble": _core(8.0),  # per refill cycle
    # --- instruction execution [A1][A4][A5] ---------------------------------
    "instr.nop": _core(8.0),
    "instr.int_logic": _core(4.0, 16.0, vdd=0.85),
    "instr.int_add": _core(32.0, 75.0, vdd=0.85),
    "instr.int_mul": _core(60.0, 216.0, vdd=0.9),
    "instr.int_div": _core(150.0, 626.0, vdd=0.9),
    "instr.fp_add_d": _core(95.0, 240.0, vdd=0.9),
    "instr.fp_mul_d": _core(120.0, 290.0, vdd=0.9),
    "instr.fp_div_d": _core(210.0, 560.0, vdd=0.9),
    "instr.fp_add_s": _core(70.0, 180.0, vdd=0.9),
    "instr.fp_mul_s": _core(85.0, 215.0, vdd=0.9),
    "instr.fp_div_s": _core(150.0, 420.0, vdd=0.9),
    "instr.load": _core(70.0, 95.0, vdd=0.7),
    "instr.store": _core(90.0, 110.0, vdd=0.7),
    "instr.branch": _core(30.0, 45.0, vdd=0.9),
    # --- caches [A1][A2] ------------------------------------------------------
    "l1d.read": _sram(100.0, 20.0),
    "l1d.write": _sram(105.0, 20.0),
    "l1d.fill": _sram(120.0, 20.0),
    "l1i.read": _sram(95.0, 20.0),
    "l1i.fill": _sram(150.0, 20.0),
    "l15.read": _sram(110.0, 20.0),
    "l15.write": _sram(120.0, 20.0),
    "l15.fill": _sram(140.0, 20.0),
    "l2.read": _sram(330.0, 40.0),
    "l2.write": _sram(260.0, 40.0),
    "l2.fill": _sram(380.0, 40.0),
    "l2.writeback": _sram(350.0, 40.0),
    "dir.lookup": _sram(45.0, 5.0),
    "mem.line_fetch": _core(400.0, vdd=0.6),  # miss-path control logic
    # Replay/MSHR/retry activity per cycle an off-chip miss is
    # outstanding; calibrated against Table VII's 308.7 nJ L2-miss row
    # (the dominant term: "the chip ... stall[s] and consume[s] energy
    # until the memory request returns").
    "mem.outstanding_cycle": _core(106.0, vdd=0.75),
    "mem.line_writeback": _core(400.0, vdd=0.6),
    # --- NoC [A3]: priced per router traversal / per link traversal ----------
    "noc1.router_pass": _core(3.7, vdd=0.8),
    "noc2.router_pass": _core(3.7, vdd=0.8),
    "noc3.router_pass": _core(3.7, vdd=0.8),
    "noc1.flit_hop": _core(0.0, 13.4),
    "noc2.flit_hop": _core(0.0, 13.4),
    "noc3.flit_hop": _core(0.0, 13.4),
    "noc1.coupling": _core(0.0, 0.3),
    "noc2.coupling": _core(0.0, 0.3),
    "noc3.coupling": _core(0.0, 0.3),
    # Local (0-hop) message flits still pass the local router port; the
    # transaction-level memory system records noc*.flit per message.
    "noc1.flit": _core(4.0, vdd=0.8),
    "noc2.flit": _core(4.0, vdd=0.8),
    "noc3.flit": _core(4.0, vdd=0.8),
    # --- off-chip [Fig 16 VIO traces; Table IX hmmer/libquantum] -------------
    "io.beat": EventEnergy(base_pj=800.0, act_pj=3200.0, rail="io"),
    "chipbridge.flit": _core(8.0, vdd=0.9),
    "mitts.stall_cycle": _core(1.5),  # shaper bin/credit logic
    "chipset.request": _core(0.0),  # chipset FPGA: not on Piton rails
    "dram.burst": _core(0.0),  # DRAM energy excluded, as in the paper
    "dram.refresh": _core(0.0),
}


@dataclass(frozen=True)
class Calibration:
    """Full power/frequency calibration."""

    # --- static (leakage) power [Table V, Fig 10] ----------------------------
    #: Chip #2 static power at Table III voltages and T_ref die temp.
    #: The bench anchor (389.3 mW "at room temperature") includes ~5 C
    #: of self-heating; solving the thermal fixed point back-propagates
    #: to 358.2 mW at a true 25 C die.
    static_total_w: float = 0.358124
    #: Share of static power on VDD (logic) vs VCS (SRAM arrays);
    #: Fig 10 / Fig 16 show core static well above SRAM static
    #: (the VCS rail sits near 270 mW during the SPEC runs).
    static_vdd_frac: float = 0.70
    #: Exponential voltage sensitivity of leakage, per volt.
    leak_per_volt: float = 2.5
    #: Exponential temperature sensitivity of leakage, per deg C
    #: [Fig 17's power-temperature exponential].
    leak_per_degc: float = 0.016
    #: Room (reference) temperature for the static anchor, deg C.
    t_ref_c: float = 25.0

    # --- idle (clock) dynamic power [Table V] ---------------------------------
    #: Effective switched capacitance of the clock network + always-on
    #: FSMs, fitted so the *measured* idle (static at the self-heated
    #: ~52 C die plus C V^2 f) reproduces Table V's 2015.3 mW.
    idle_cap_f: float = 2.902e-9
    #: Share of idle dynamic power on VDD (clock trees are logic;
    #: Fig 10 shows SRAM dynamic power is a thin sliver).
    idle_vdd_frac: float = 0.929

    # --- Fmax (alpha-power law) [Fig 9] ---------------------------------------
    #: Threshold voltage and velocity-saturation exponent fitted to
    #: chip #2's 285.74 MHz @ 0.80V and 514.33 MHz @ 1.00V.
    vth_v: float = 0.50
    alpha: float = 1.6
    fmax_ref_hz: float = 514.33e6
    fmax_ref_vdd: float = 1.00

    # --- thermal [Sec IV-C, IV-J] ---------------------------------------------
    #: Junction-to-ambient thermal resistance with the stock heat sink
    #: and 44 cfm fan (cavity-up QFP in a socket: poor).
    r_theta_ja: float = 13.0
    #: Junction-to-ambient without the heat sink (Sec IV-J setup).
    r_theta_no_heatsink: float = 38.0
    #: Maximum junction temperature for stable Linux operation.
    t_max_c: float = 88.0

    # --- nominal rails [Table III] --------------------------------------------
    vdd_nom: float = 1.00
    vcs_nom: float = 1.05
    vio_nom: float = 1.80

    # ``hash=False``: the mapping is excluded from the generated
    # ``__hash__`` (dicts are unhashable) but still participates in
    # ``__eq__``, so Calibration stays usable as an ``lru_cache`` key
    # in the grid-loop memoizers while distinct energy tables never
    # collide (equal hash, unequal eq -> separate cache entries).
    event_energies: Mapping[str, EventEnergy] = field(
        default_factory=lambda: dict(EVENT_ENERGIES), hash=False
    )

    def energy_for(self, name: str) -> EventEnergy | None:
        return self.event_energies.get(name)


DEFAULT_CALIBRATION = Calibration()
