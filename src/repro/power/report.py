"""Block-level power breakdown reporting.

The paper's stated purpose for releasing its data is to let researchers
"build detailed and accurate power models for an openly accessible
design". This module is that tool for the reproduction: given a
workload's event ledger and operating point, it attributes the
activity power to architectural blocks (core, L1.5, L2+directory, the
three NoCs, FPU, off-chip I/O) using the same event-to-block map the
structural :mod:`repro.chip.tile` publishes, and splits idle power by
Figure 8 area shares.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import AreaBreakdown, PASSIVE_BLOCKS
from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import ChipPersona, TYPICAL
from repro.util.events import EventLedger
from repro.util.tables import render_table

PJ = 1e-12

#: Event-prefix -> reported block. Order matters: first match wins.
BLOCK_OF_PREFIX: tuple[tuple[str, str], ...] = (
    ("instr.fp_", "fpu"),
    ("instr.", "core"),
    ("core.", "core"),
    ("l1d.", "core"),  # the L1D arrays live inside the core block
    ("l1i.", "core"),
    ("l15.", "l15"),
    ("l2.", "l2+directory"),
    ("dir.", "l2+directory"),
    ("noc1.", "noc1"),
    ("noc2.", "noc2"),
    ("noc3.", "noc3"),
    ("mem.", "miss handling"),
    ("chipbridge.", "chip bridge"),
    ("io.", "io pads"),
    ("chipset.", "(chipset, unpowered)"),
    ("dram.", "(dram, excluded)"),
    ("mitts.", "mitts"),
)


def block_of_event(event: str) -> str:
    for prefix, block in BLOCK_OF_PREFIX:
        if event.startswith(prefix):
            return block
    return "other"


@dataclass
class BlockPower:
    """One block's share of a power report."""

    block: str
    active_w: float
    events: int


class PowerReport:
    """Attribute measured power to architectural blocks."""

    def __init__(
        self,
        persona: ChipPersona = TYPICAL,
        calib: Calibration = DEFAULT_CALIBRATION,
    ):
        self.persona = persona
        self.calib = calib
        self.model = ChipPowerModel(persona, calib)

    # ------------------------------------------------------------- activity
    def active_breakdown(
        self,
        ledger: EventLedger,
        window_cycles: float,
        op: OperatingPoint,
    ) -> list[BlockPower]:
        """Per-block activity power, descending."""
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        window_s = window_cycles / op.freq_hz
        s_vdd = (op.vdd / self.calib.vdd_nom) ** 2
        s_vcs = (op.vcs / self.calib.vcs_nom) ** 2
        s_vio = (op.vio / self.calib.vio_nom) ** 2
        joules: dict[str, float] = {}
        counts: dict[str, int] = {}
        for event, count in ledger.counts.items():
            price = self.calib.energy_for(event)
            if price is None or count == 0:
                continue
            activity = ledger.mean_activity(event)
            pj = count * (price.base_pj + price.act_pj * activity)
            energy = pj * PJ * self.persona.dyn
            if price.rail == "io":
                energy *= s_vio
            else:
                energy *= (
                    price.vdd_frac * s_vdd
                    + (1.0 - price.vdd_frac) * s_vcs
                )
            block = block_of_event(event)
            joules[block] = joules.get(block, 0.0) + energy
            counts[block] = counts.get(block, 0) + int(count)
        return sorted(
            (
                BlockPower(block, j / window_s, counts[block])
                for block, j in joules.items()
            ),
            key=lambda b: -b.active_w,
        )

    # ----------------------------------------------------------------- idle
    def idle_breakdown(self, op: OperatingPoint) -> dict[str, float]:
        """Idle (static + clock) power split by tile-level area shares
        — the best attribution available without per-block gating."""
        idle = self.model.idle_power(op)
        core_idle = idle.vdd_w + idle.vcs_w
        area = AreaBreakdown()
        entries = {
            name: entry.percent
            for name, entry in area.entries("tile").items()
            if name not in PASSIVE_BLOCKS
        }
        total_pct = sum(entries.values())
        return {
            name: core_idle * pct / total_pct
            for name, pct in sorted(
                entries.items(), key=lambda kv: -kv[1]
            )
        }

    # --------------------------------------------------------------- report
    def render(
        self,
        ledger: EventLedger,
        window_cycles: float,
        op: OperatingPoint,
    ) -> str:
        """A printable block-power report."""
        blocks = self.active_breakdown(ledger, window_cycles, op)
        total_active = sum(b.active_w for b in blocks)
        rows = [
            (
                b.block,
                round(b.active_w * 1e3, 2),
                (
                    round(100 * b.active_w / total_active, 1)
                    if total_active
                    else 0.0
                ),
                b.events,
            )
            for b in blocks
        ]
        idle = self.model.idle_power(op)
        table = render_table(
            ["block", "active mW", "% of active", "events"],
            rows,
            title="Activity power by block "
            f"(idle baseline {1e3 * (idle.vdd_w + idle.vcs_w):.0f} mW "
            "excluded)",
        )
        return table
