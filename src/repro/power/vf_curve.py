"""Maximum-frequency-versus-voltage with thermal limiting (Figure 9).

The unconstrained Fmax comes from the alpha-power law; the *achievable*
Fmax additionally requires a stable thermal operating point: the die
temperature implied by running at (V, f) — including the
leakage-temperature feedback — must stay below the stability ceiling.
Fast, leaky silicon (Chip #1) therefore wins at low voltage and loses
above ~1.15V, reproducing the curve crossing and the 1.2V droop.

The gateway FPGA drives a discretized PLL reference clock, so tested
frequencies land on a grid; :meth:`VfCurve.boot_frequency` quantizes
and reports the grid step as the quantization error bar, like the
paper's Figure 9 error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.power.chip_power import ChipPowerModel, OperatingPoint
from repro.silicon.variation import ChipPersona, TYPICAL
from repro.power.technology import fmax_hz
from repro.util.events import EventLedger

#: PLL reference quantum: the reference clock steps the gateway FPGA
#: can synthesize land the core clock on a ~7.15 MHz grid (the default
#: 500.05 MHz operating point sits on it).
FREQ_STEP_HZ = 7.1436e6


@dataclass(frozen=True)
class VfPoint:
    """One point of the Figure 9 sweep."""

    vdd: float
    fmax_hz: float
    quantization_hz: float
    thermally_limited: bool
    die_temp_c: float


class VfCurve:
    """Fmax sweep machinery for one chip persona."""

    #: Power margin representing the OS-boot workload (Linux boot is
    #: mostly idle-with-bursts; measured boot power sits slightly above
    #: idle).
    BOOT_ACTIVITY_W = 0.12

    def __init__(
        self,
        persona: ChipPersona = TYPICAL,
        calib: Calibration = DEFAULT_CALIBRATION,
        ambient_c: float = 25.0,
    ):
        self.persona = persona
        self.calib = calib
        self.ambient_c = ambient_c
        self.power_model = ChipPowerModel(persona, calib)

    # --------------------------------------------------------------- thermal
    def steady_temp_c(self, vdd: float, vcs: float, freq_hz: float) -> float:
        """Fixed point of T = T_amb + R_ja * P(V, f, T).

        The leakage-temperature feedback converges quickly because
        d(P)/dT * R_ja << 1 in the stable region; iterate to tolerance
        and cap the runaway case at a sentinel above t_max.
        """
        temp = self.ambient_c
        for _ in range(60):
            op = OperatingPoint(
                vdd=vdd, vcs=vcs, freq_hz=freq_hz, temp_c=temp
            )
            power = (
                self.power_model.idle_power(op).total_w
                + self.BOOT_ACTIVITY_W * (vdd / self.calib.vdd_nom) ** 2
            )
            new_temp = self.ambient_c + self.calib.r_theta_ja * power
            if abs(new_temp - temp) < 0.01:
                return new_temp
            if new_temp > self.calib.t_max_c + 60:
                return new_temp  # thermal runaway; clearly unstable
            temp = new_temp
        return temp

    # ------------------------------------------------------------------ fmax
    def achievable_fmax_hz(self, vdd: float) -> tuple[float, bool, float]:
        """(fmax, thermally_limited, die_temp) at ``vdd``.

        VCS rides 0.05V above VDD as in every paper experiment.
        """
        vcs = vdd + 0.05
        f_circuit = fmax_hz(vdd, self.persona, self.calib)
        temp = self.steady_temp_c(vdd, vcs, f_circuit)
        if temp <= self.calib.t_max_c:
            return f_circuit, False, temp
        # Walk frequency down until the thermal fixed point is stable.
        f = f_circuit
        while f > FREQ_STEP_HZ:
            f -= FREQ_STEP_HZ
            temp = self.steady_temp_c(vdd, vcs, f)
            if temp <= self.calib.t_max_c:
                return f, True, temp
        return 0.0, True, temp

    def boot_frequency(self, vdd: float) -> VfPoint:
        """Highest grid frequency at which Linux boots at ``vdd``.

        Memoized across VfCurve instances: sweep runners construct a
        fresh curve per point with identical (persona, calib, ambient)
        arguments, and the thermal fixed point is the expensive part of
        resolving a grid point's frequency. The cache key is the full
        curve identity, and :class:`VfPoint` is frozen, so the cached
        value is bit-identical to and as safe as a fresh solve.
        """
        return _cached_boot_point(
            self.persona, self.calib, self.ambient_c, vdd
        )

    def _solve_boot_frequency(self, vdd: float) -> VfPoint:
        fmax, limited, temp = self.achievable_fmax_hz(vdd)
        quantized = (fmax // FREQ_STEP_HZ) * FREQ_STEP_HZ
        return VfPoint(
            vdd=vdd,
            fmax_hz=quantized,
            quantization_hz=FREQ_STEP_HZ,
            thermally_limited=limited,
            die_temp_c=temp,
        )

    def sweep(self, vdd_values: list[float]) -> list[VfPoint]:
        return [self.boot_frequency(v) for v in vdd_values]


@lru_cache(maxsize=4096)
def _cached_boot_point(
    persona: ChipPersona, calib: Calibration, ambient_c: float, vdd: float
) -> VfPoint:
    return VfCurve(persona, calib, ambient_c)._solve_boot_frequency(vdd)


def idle_ledger() -> EventLedger:
    """An empty ledger: the chip doing nothing (for idle sweeps)."""
    return EventLedger()
