"""Calibration self-check: every paper anchor, recomputed and diffed.

The paper's core claim to rigor is that measurements were "verified
against simulation" and correlated with the RTL. The reproduction's
equivalent: this module recomputes each calibration anchor through the
full simulate-measure-methodology pipeline and reports the deviation
from the published value. Run it after touching anything in
:mod:`repro.power.calibration`:

    from repro.power.validation import validate_anchors, render_report
    print(render_report(validate_anchors(quick=True)))

The regression suite pins these same checks; this module exists so a
*user* retuning the model for their own design gets the diff tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class AnchorCheck:
    """One anchor's outcome."""

    name: str
    paper_value: float
    measured_value: float
    unit: str
    tolerance: float  # relative

    @property
    def deviation(self) -> float:
        if self.paper_value == 0:
            return 0.0
        return (
            self.measured_value - self.paper_value
        ) / self.paper_value

    @property
    def within_tolerance(self) -> bool:
        return abs(self.deviation) <= self.tolerance


def _check(
    name: str,
    paper: float,
    measure: Callable[[], float],
    unit: str,
    tolerance: float,
) -> AnchorCheck:
    return AnchorCheck(
        name=name,
        paper_value=paper,
        measured_value=measure(),
        unit=unit,
        tolerance=tolerance,
    )


def validate_anchors(quick: bool = True) -> list[AnchorCheck]:
    """Recompute the calibration anchors. ``quick`` uses fewer cores
    for the simulation-backed checks (tolerances widened accordingly).
    """
    from repro.experiments import RunContext, fig11_epi, table7_memory
    from repro.power.vf_curve import VfCurve
    from repro.silicon.variation import CHIP2, CHIP3
    from repro.system import PitonSystem

    checks: list[AnchorCheck] = []

    chip2 = PitonSystem.default(seed=101)
    checks.append(
        _check(
            "table5.static_mw",
            389.3,
            lambda: chip2.measure_static().core.value * 1e3,
            "mW",
            0.02,
        )
    )
    checks.append(
        _check(
            "table5.idle_mw",
            2015.3,
            lambda: chip2.measure_idle().core.value * 1e3,
            "mW",
            0.02,
        )
    )

    chip3 = PitonSystem.default(persona=CHIP3, seed=101)
    checks.append(
        _check(
            "chip3.static_mw",
            364.8,
            lambda: chip3.measure_static().core.value * 1e3,
            "mW",
            0.02,
        )
    )

    curve = VfCurve(CHIP2)
    checks.append(
        _check(
            "fig9.fmax_1v_mhz",
            514.33,
            lambda: curve.boot_frequency(1.0).fmax_hz / 1e6,
            "MHz",
            0.03,
        )
    )

    cores = 4 if quick else 25
    epi = fig11_epi.run(RunContext(quick=True), cores=cores)
    rows = epi.row_dict()
    checks.append(
        AnchorCheck(
            "fig11.ldx_random_pj",
            286.46,
            float(rows["ldx"][3]),
            "pJ",
            0.12,
        )
    )
    checks.append(
        AnchorCheck(
            "fig11.three_adds_per_ldx",
            1.0,
            3 * float(rows["add"][3]) / float(rows["ldx"][3]),
            "ratio",
            0.15,
        )
    )

    table7 = table7_memory.run(RunContext(quick=True), cores=cores)
    t7 = table7.row_dict()
    checks.append(
        AnchorCheck(
            "table7.local_l2_nj",
            1.54,
            float(t7["L1 miss, local L2 hit"][3]),
            "nJ",
            0.15,
        )
    )
    return checks


def render_report(checks: list[AnchorCheck]) -> str:
    from repro.util.tables import render_table

    rows = [
        (
            c.name,
            c.paper_value,
            round(c.measured_value, 3),
            c.unit,
            f"{100 * c.deviation:+.1f}%",
            "ok" if c.within_tolerance else "OUT OF TOLERANCE",
        )
        for c in checks
    ]
    passed = sum(c.within_tolerance for c in checks)
    table = render_table(
        ["anchor", "paper", "measured", "unit", "deviation", "status"],
        rows,
        title=f"Calibration anchors: {passed}/{len(checks)} within "
        "tolerance",
    )
    return table
