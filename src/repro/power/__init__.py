"""Power, energy, and frequency modelling for the Piton reproduction.

The model has three layers:

1. :mod:`repro.power.calibration` — every free constant in one place:
   per-event energies (priced at nominal voltage), leakage and clock
   coefficients, the alpha-power-law delay parameters, thermal
   resistances. Each is annotated with the paper anchor it was fitted
   against.
2. :mod:`repro.power.technology` — the device-physics relations: static
   power exponential in voltage and temperature, CV^2f clock power,
   Fmax from the alpha-power law, quadratic voltage scaling of event
   energies.
3. :mod:`repro.power.chip_power` — the aggregator that turns an
   :class:`~repro.util.events.EventLedger` plus operating point
   (VDD/VCS/VIO, frequency, temperature, chip persona) into per-rail
   power, which the virtual test board then "measures".

:mod:`repro.power.epi` and :mod:`repro.power.epf` implement the paper's
energy-per-instruction and energy-per-flit equations verbatim, so the
reproduction's analysis pipeline is the paper's.
"""

from repro.power.calibration import DEFAULT_CALIBRATION, Calibration, EventEnergy
from repro.power.chip_power import ChipPowerModel, OperatingPoint, RailPower
from repro.power.epf import energy_per_flit
from repro.power.epi import energy_per_instruction
from repro.power.fitting import fit_fmax, fit_static_idle
from repro.power.report import PowerReport
from repro.power.validation import render_report, validate_anchors
from repro.power.vf_curve import VfCurve

__all__ = [
    "DEFAULT_CALIBRATION",
    "Calibration",
    "EventEnergy",
    "ChipPowerModel",
    "OperatingPoint",
    "RailPower",
    "energy_per_flit",
    "energy_per_instruction",
    "VfCurve",
    "fit_fmax",
    "fit_static_idle",
    "PowerReport",
    "render_report",
    "validate_anchors",
]
