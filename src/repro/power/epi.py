"""The paper's energy-per-instruction methodology (Section IV-E).

    EPI = (1/25) x ((P_inst - P_idle) / f) x L

where ``P_inst`` is the steady-state power while all 25 cores run the
unrolled instruction loop, ``P_idle`` the idle power of Table V, ``f``
the core clock, and ``L`` the instruction's latency in cycles verified
through simulation. Powers sum the VDD and VCS rail contributions.

These helpers operate on :class:`~repro.util.stats.Measurement` values
so the error bars propagate exactly as in the paper (standard deviation
of the 128 monitor samples).
"""

from __future__ import annotations

from repro.util.stats import Measurement


def energy_per_instruction(
    p_inst_w: Measurement,
    p_idle_w: Measurement,
    freq_hz: float,
    latency_cycles: float,
    cores: int = 25,
) -> Measurement:
    """Apply the EPI equation; returns joules per instruction."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    if latency_cycles <= 0:
        raise ValueError("latency must be positive")
    if cores <= 0:
        raise ValueError("core count must be positive")
    delta = p_inst_w - p_idle_w
    return delta * (latency_cycles / (freq_hz * cores))


def subtract_filler_energy(
    epi_with_filler: Measurement,
    filler_epi: Measurement,
    filler_count: int,
) -> Measurement:
    """The paper's ``stx (NF)`` correction: the store test pads each
    store with nine ``nop``\\ s so the buffer never fills; their energy
    is then subtracted to isolate one store."""
    if filler_count < 0:
        raise ValueError("filler count must be non-negative")
    return epi_with_filler - filler_epi * filler_count
