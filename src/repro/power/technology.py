"""Device-physics relations for the 32nm-SOI-like technology model.

First-order equations, each one the relation the paper itself uses to
explain its measurements:

* leakage exponential in voltage and temperature (Roy et al. [51] via
  Section IV-J's "exponential relationship between power and
  temperature ... caused by leakage"),
* clock/idle dynamic power = C V^2 f,
* maximum frequency from the alpha-power law (Sakurai-Newton), which
  captures the near-linear-but-curving Fmax-vs-VDD of Figure 9.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.power.calibration import Calibration, DEFAULT_CALIBRATION
from repro.silicon.variation import ChipPersona, TYPICAL


@lru_cache(maxsize=16384)
def leakage_scale(
    vdd: float,
    temp_c: float,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Multiplier on nominal static power at (vdd, temp).

    Memoized: grid loops evaluate the same (vdd, temp, calib) triple
    once per sweep point, and ``exp`` of a fixed float expression is a
    pure function, so caching is bit-identical to recomputation
    (proven in ``tests/unit/test_power_memo.py``).
    """
    dv = vdd - calib.vdd_nom
    dt = temp_c - calib.t_ref_c
    exponent = calib.leak_per_volt * dv + calib.leak_per_degc * dt
    # Clamp: beyond this the operating point is deep in thermal
    # runaway and callers only need "very large", not infinity.
    return math.exp(min(exponent, 40.0))


def static_power_w(
    vdd: float,
    vcs: float,
    temp_c: float,
    persona: ChipPersona = TYPICAL,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> tuple[float, float]:
    """(VDD static, VCS static) in watts.

    The SRAM rail tracks VDD in every paper experiment
    (VCS = VDD + 0.05); its leakage uses its own voltage but the same
    exponential coefficients.
    """
    total_nom = calib.static_total_w * persona.leak
    vdd_part = total_nom * calib.static_vdd_frac * leakage_scale(
        vdd, temp_c, calib
    )
    vcs_part = (
        total_nom
        * (1.0 - calib.static_vdd_frac)
        * math.exp(
            min(
                calib.leak_per_volt * (vcs - calib.vcs_nom)
                + calib.leak_per_degc * (temp_c - calib.t_ref_c),
                40.0,
            )
        )
    )
    return vdd_part, vcs_part


def clock_power_w(
    vdd: float,
    vcs: float,
    freq_hz: float,
    persona: ChipPersona = TYPICAL,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> tuple[float, float]:
    """(VDD, VCS) idle dynamic power: clock trees + free-running FSMs."""
    cap = calib.idle_cap_f * persona.dyn
    vdd_part = cap * calib.idle_vdd_frac * vdd * vdd * freq_hz
    vcs_part = cap * (1.0 - calib.idle_vdd_frac) * vcs * vcs * freq_hz
    return vdd_part, vcs_part


def fmax_hz(
    vdd: float,
    persona: ChipPersona = TYPICAL,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Alpha-power-law maximum clock frequency at ``vdd`` (no thermal
    limit; :class:`repro.power.vf_curve.VfCurve` adds that)."""
    if vdd <= calib.vth_v:
        return 0.0

    def shape(v: float) -> float:
        return (v - calib.vth_v) ** calib.alpha / v

    scale = calib.fmax_ref_hz / shape(calib.fmax_ref_vdd)
    return persona.speed * scale * shape(vdd)


def voltage_scale_core(
    vdd: float, vcs: float, vdd_frac: float, calib: Calibration
) -> float:
    """Quadratic voltage scaling of a core-rail event's energy,
    blending the VDD and VCS shares."""
    s_vdd = (vdd / calib.vdd_nom) ** 2
    s_vcs = (vcs / calib.vcs_nom) ** 2
    return vdd_frac * s_vdd + (1.0 - vdd_frac) * s_vcs
